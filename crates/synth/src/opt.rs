//! AIG optimization passes: dangling-node cleanup and delay-oriented
//! balancing (the `strash; balance; sweep` recipe of an ABC-style
//! synthesis front end — constant propagation and sharing happen
//! automatically at construction thanks to strashing).

use crate::aig::{Aig, AigKind, AigNode, Lit};
use pfdbg_util::id::EntityId;
use pfdbg_util::IdVec;

/// Rebuild the AIG keeping only nodes reachable from primary outputs and
/// latch next-state functions. Strash-dedups again as a side effect.
pub fn cleanup(aig: &Aig) -> Aig {
    let mut out = Aig::new(aig.name.clone());
    let mut map: IdVec<AigNode, Option<Lit>> = IdVec::filled(None, aig.n_nodes());
    map[AigNode(0)] = Some(Lit::FALSE);

    // Sources keep identity (all inputs and latches survive: they are the
    // circuit's interface even if currently unread).
    for (id, entry) in aig.iter() {
        match entry.kind {
            AigKind::Input { is_param } => {
                map[id] = Some(out.add_input(entry.name.clone(), is_param));
            }
            AigKind::Latch { init } => {
                map[id] = Some(out.add_latch(entry.name.clone(), init));
            }
            _ => {}
        }
    }

    // Mark reachable AND nodes.
    let mut reachable: IdVec<AigNode, bool> = IdVec::filled(false, aig.n_nodes());
    let mut stack: Vec<AigNode> = Vec::new();
    let visit = |n: AigNode, reachable: &mut IdVec<AigNode, bool>, stack: &mut Vec<AigNode>| {
        if !reachable[n] {
            reachable[n] = true;
            stack.push(n);
        }
    };
    for (_, lit) in &aig.outputs {
        visit(lit.node(), &mut reachable, &mut stack);
    }
    for latch in aig.latch_ids() {
        visit(aig.latch_next(latch).node(), &mut reachable, &mut stack);
    }
    while let Some(n) = stack.pop() {
        if let AigKind::And(a, b) = aig.node(n).kind {
            if !reachable[a.node()] {
                reachable[a.node()] = true;
                stack.push(a.node());
            }
            if !reachable[b.node()] {
                reachable[b.node()] = true;
                stack.push(b.node());
            }
        }
    }

    // Rebuild reachable ANDs in construction (topological) order.
    for (id, entry) in aig.iter() {
        if let AigKind::And(a, b) = entry.kind {
            if reachable[id] {
                let fa = translate(&map, a);
                let fb = translate(&map, b);
                let lit = out.and(fa, fb);
                if !lit.complemented() && !lit.is_const() && !entry.name.is_empty() {
                    out.name_node(lit.node(), &entry.name);
                }
                map[id] = Some(lit);
            }
        }
    }

    for (name, lit) in &aig.outputs {
        let l = translate(&map, *lit);
        out.add_output(name.clone(), l);
    }
    for latch in aig.latch_ids() {
        let next = translate(&map, aig.latch_next(latch));
        let new_latch = map[latch].expect("latch mapped");
        out.set_latch_next(new_latch, next);
    }
    out
}

fn translate(map: &IdVec<AigNode, Option<Lit>>, lit: Lit) -> Lit {
    let base = map[lit.node()].expect("fanin mapped before use");
    if lit.complemented() {
        base.not()
    } else {
        base
    }
}

/// Delay-oriented balancing: rebuild every multi-input conjunction as a
/// balanced tree, pairing lowest-level operands first (the classic ABC
/// `balance` pass). Never increases the AND count of a tree; usually
/// reduces depth.
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::new(aig.name.clone());
    let mut map: IdVec<AigNode, Option<Lit>> = IdVec::filled(None, aig.n_nodes());
    map[AigNode(0)] = Some(Lit::FALSE);
    for (id, entry) in aig.iter() {
        match entry.kind {
            AigKind::Input { is_param } => {
                map[id] = Some(out.add_input(entry.name.clone(), is_param));
            }
            AigKind::Latch { init } => {
                map[id] = Some(out.add_latch(entry.name.clone(), init));
            }
            _ => {}
        }
    }

    let fanouts = aig.fanout_counts();

    // Only "root" conjunctions are rebuilt: nodes that drive an output or
    // latch, are shared (fanout >= 2), or are consumed complemented.
    // Conjunction-internal nodes (fanout 1, used uncomplemented by another
    // AND) are inlined by the leaf collection, so rebuilding them here
    // would only create dangling duplicates.
    let mut is_root: IdVec<AigNode, bool> = IdVec::filled(false, aig.n_nodes());
    for (_, lit) in &aig.outputs {
        is_root[lit.node()] = true;
    }
    for latch in aig.latch_ids() {
        is_root[aig.latch_next(latch).node()] = true;
    }
    for (_, entry) in aig.iter() {
        if let AigKind::And(a, b) = entry.kind {
            for lit in [a, b] {
                if lit.complemented() || fanouts[lit.node()] >= 2 {
                    is_root[lit.node()] = true;
                }
            }
        }
    }

    // Process root AND nodes in topological order; levels are tracked in
    // the *new* AIG to drive pairing decisions.
    let mut new_levels: Vec<u32> = vec![0; 1];
    let level_of =
        |lit: Lit, levels: &Vec<u32>| -> u32 { *levels.get(lit.node().index()).unwrap_or(&0) };

    for (id, entry) in aig.iter() {
        if let AigKind::And(..) = entry.kind {
            if !is_root[id] {
                continue;
            }
            // Collect the conjunction's leaves: descend through
            // uncomplemented AND fanins with fanout 1 (shared or
            // complemented sub-conjunctions stay intact — sharing wins
            // over restructuring).
            let mut leaves: Vec<Lit> = Vec::new();
            collect_conj_leaves(aig, Lit::new(id, false), &fanouts, true, &mut leaves);

            // Translate leaves into the new AIG.
            let mut ops: Vec<Lit> = leaves.iter().map(|&l| translate(&map, l)).collect();

            // Pair lowest levels first.
            ops.sort_by_key(|&l| std::cmp::Reverse(level_of(l, &new_levels)));
            while ops.len() > 1 {
                // Take the two lowest-level operands (at the back).
                let a = ops.pop().expect("len>1");
                let b = ops.pop().expect("len>1");
                let r = out.and(a, b);
                // Maintain new_levels for any fresh node.
                let idx = r.node().index();
                if idx >= new_levels.len() {
                    new_levels.resize(idx + 1, 0);
                    new_levels[idx] = 1 + level_of(a, &new_levels).max(level_of(b, &new_levels));
                }
                // Insert r keeping the vector sorted descending by level.
                let lv = level_of(r, &new_levels);
                let pos = ops
                    .binary_search_by_key(&std::cmp::Reverse(lv), |&l| {
                        std::cmp::Reverse(level_of(l, &new_levels))
                    })
                    .unwrap_or_else(|p| p);
                // binary_search on descending order via Reverse: find last
                // position with level >= lv so pop() still takes minima.
                ops.insert(pos, r);
            }
            let lit = ops.pop().unwrap_or(Lit::TRUE);
            if !lit.complemented() && !lit.is_const() && !entry.name.is_empty() {
                out.name_node(lit.node(), &entry.name);
            }
            map[id] = Some(lit);
        }
    }

    for (name, lit) in &aig.outputs {
        let l = translate(&map, *lit);
        out.add_output(name.clone(), l);
    }
    for latch in aig.latch_ids() {
        let next = translate(&map, aig.latch_next(latch));
        let new_latch = map[latch].expect("latch mapped");
        out.set_latch_next(new_latch, next);
    }
    out
}

/// Gather the multi-input conjunction rooted at `lit`. `root` marks the
/// top call (the root itself is always expanded if it is an AND).
fn collect_conj_leaves(
    aig: &Aig,
    lit: Lit,
    fanouts: &IdVec<AigNode, u32>,
    root: bool,
    leaves: &mut Vec<Lit>,
) {
    if !lit.complemented() {
        if let AigKind::And(a, b) = aig.node(lit.node()).kind {
            if root || fanouts[lit.node()] <= 1 {
                collect_conj_leaves(aig, a, fanouts, false, leaves);
                collect_conj_leaves(aig, b, fanouts, false, leaves);
                return;
            }
        }
    }
    leaves.push(lit);
}

/// The standard synthesis pipeline: strash (implicit), balance, cleanup.
/// Returns the optimized AIG.
pub fn synthesize(nw: &pfdbg_netlist::Network) -> Result<Aig, String> {
    let aig = crate::aig::from_network(nw)?;
    let balanced = balance(&aig);
    Ok(cleanup(&balanced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::to_network;
    use pfdbg_netlist::sim::comb_equivalent;
    use pfdbg_netlist::Network;

    /// Long AND chain: a0 & a1 & ... & a7 built left-deep (depth 7).
    fn chain(n: usize) -> Aig {
        let mut aig = Aig::new("chain");
        let inputs: Vec<Lit> = (0..n).map(|i| aig.add_input(format!("a{i}"), false)).collect();
        let mut acc = inputs[0];
        for &l in &inputs[1..] {
            acc = aig.and(acc, l);
        }
        aig.add_output("y", acc);
        aig
    }

    #[test]
    fn balance_reduces_chain_depth() {
        let aig = chain(8);
        assert_eq!(aig.depth(), 7);
        let b = balance(&aig);
        assert_eq!(b.depth(), 3); // ceil(log2 8)
        assert_eq!(b.n_ands(), 7); // same node count
                                   // Function preserved.
        let nw_a = to_network(&aig);
        let nw_b = to_network(&b);
        assert!(comb_equivalent(&nw_a, &nw_b, 64, 2).unwrap());
    }

    #[test]
    fn balance_preserves_shared_subtrees() {
        let mut aig = Aig::new("share");
        let a = aig.add_input("a", false);
        let b = aig.add_input("b", false);
        let c = aig.add_input("c", false);
        let ab = aig.and(a, b);
        let y1 = aig.and(ab, c);
        aig.add_output("ab", ab); // ab is shared (fanout 2)
        aig.add_output("y1", y1);
        let bal = balance(&aig);
        let nw_a = to_network(&aig);
        let nw_b = to_network(&bal);
        assert!(comb_equivalent(&nw_a, &nw_b, 64, 3).unwrap());
        // The shared node must not be duplicated: same AND count.
        assert_eq!(bal.n_ands(), aig.n_ands());
    }

    #[test]
    fn cleanup_drops_dangling() {
        let mut aig = Aig::new("dangle");
        let a = aig.add_input("a", false);
        let b = aig.add_input("b", false);
        let used = aig.and(a, b);
        let _dead = aig.and(a, b.not());
        aig.add_output("y", used);
        assert_eq!(aig.n_ands(), 2);
        let c = cleanup(&aig);
        assert_eq!(c.n_ands(), 1);
        assert_eq!(c.n_inputs(), 2); // interface preserved
    }

    #[test]
    fn cleanup_keeps_latch_cones() {
        let mut aig = Aig::new("l");
        let a = aig.add_input("a", false);
        let q = aig.add_latch("q", false);
        let nx = aig.xor(q, a);
        aig.set_latch_next(q, nx);
        // no outputs
        let c = cleanup(&aig);
        assert_eq!(c.n_latches(), 1);
        assert!(c.n_ands() >= 3); // xor = 3 ands
    }

    #[test]
    fn synthesize_pipeline_equivalence() {
        // A messy network: wide tables, redundancy.
        let mut nw = Network::new("messy");
        use pfdbg_netlist::truth::{gates, TruthTable};
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let c = nw.add_input("c");
        let d = nw.add_input("d");
        let t1 = nw.add_table("t1", vec![a, b], gates::and2());
        let t2 = nw.add_table("t2", vec![t1, c], gates::and2());
        let t3 = nw.add_table("t3", vec![t2, d], gates::and2());
        let wide = TruthTable::var(4, 0)
            .xor(&TruthTable::var(4, 1))
            .or(&TruthTable::var(4, 2).and(&TruthTable::var(4, 3)));
        let t4 = nw.add_table("t4", vec![a, b, c, d], wide);
        nw.add_output("y1", t3);
        nw.add_output("y2", t4);
        let aig = synthesize(&nw).unwrap();
        let back = to_network(&aig);
        assert!(comb_equivalent(&nw, &back, 64, 17).unwrap());
    }

    #[test]
    fn balance_handles_complemented_and_const() {
        let mut aig = Aig::new("cc");
        let a = aig.add_input("a", false);
        let b = aig.add_input("b", false);
        let or = aig.or(a, b); // complemented AND internally
        let z = aig.and(or, Lit::TRUE);
        aig.add_output("y", z);
        let bal = balance(&aig);
        let nw_a = to_network(&aig);
        let nw_b = to_network(&bal);
        assert!(comb_equivalent(&nw_a, &nw_b, 32, 4).unwrap());
    }
}
