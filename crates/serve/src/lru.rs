//! A small LRU cache for specialized frame-sets.
//!
//! The debug service sees the same parameter vectors over and over —
//! engineers toggle between a handful of signal selections — so the
//! server keeps the most recent specializations keyed by parameter
//! vector and serves repeats without re-evaluating any BDDs.
//!
//! Capacities are small (tens of entries), so recency is tracked with a
//! monotonic tick per entry and eviction scans for the minimum: O(n)
//! eviction, zero auxiliary structures, no unsafe linked lists.

use pfdbg_util::FxHashMap;
use std::hash::Hash;

/// A least-recently-used map with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, (u64, V)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: FxHashMap::default(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// No entries?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime `(hits, misses)` of [`LruCache::get`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                *t = self.tick;
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drop `key` if present (e.g. the cached specialization went stale
    /// because a scrub repair rewrote the device frames behind it).
    /// Not a lookup: neither hit nor miss is counted.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Insert `key -> value`, evicting the least recently used entry if
    /// the cache is full.
    pub fn put(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a
        c.put("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = LruCache::new(0);
        c.put(1, "x");
        assert_eq!(c.len(), 1);
        c.put(2, "y");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn remove_drops_without_touching_stats() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        assert!(c.remove(&"a"));
        assert!(!c.remove(&"a"), "second remove finds nothing");
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.stats(), (0, 1), "only the get counted");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.put(1, ());
        let _ = c.get(&1);
        let _ = c.get(&2);
        let _ = c.get(&1);
        assert_eq!(c.stats(), (2, 1));
    }
}
