//! Island-style FPGA device model.
//!
//! The modeled device follows the classic VPR template the paper's tool
//! flow (TPaR on top of VTR) targets: a `width × height` grid whose inner
//! tiles are CLBs (clusters of `n_ble` basic logic elements, each a K-LUT
//! plus an optional flip-flop), ringed by I/O tiles, with horizontal and
//! vertical routing channels of `channel_width` unit-length wire segments
//! between tiles, Wilton switch boxes at channel crossings and
//! fraction-`fc` connection boxes into the logic-block pins.

/// Architectural parameters of the modeled FPGA family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchSpec {
    /// LUT input count.
    pub k: usize,
    /// BLEs (LUT+FF pairs) per CLB.
    pub n_ble: usize,
    /// CLB input pins (shared by all BLEs through the local crossbar).
    pub clb_inputs: usize,
    /// Routing wires per channel.
    pub channel_width: usize,
    /// Fraction of channel wires each input pin connects to (0..=1).
    pub fc_in: f64,
    /// Fraction of channel wires each output pin connects to (0..=1).
    pub fc_out: f64,
    /// I/O pads per perimeter tile.
    pub io_capacity: usize,
}

impl Default for ArchSpec {
    fn default() -> Self {
        // K=6, N=4 with the VPR rule of thumb I = K/2 * (N+1).
        ArchSpec {
            k: 6,
            n_ble: 4,
            clb_inputs: 15,
            channel_width: 24,
            fc_in: 0.25,
            fc_out: 0.25,
            io_capacity: 4,
        }
    }
}

impl ArchSpec {
    /// Number of channel wires an input pin connects to.
    pub fn fc_in_abs(&self) -> usize {
        ((self.channel_width as f64 * self.fc_in).ceil() as usize).max(1)
    }

    /// Number of channel wires an output pin connects to.
    pub fn fc_out_abs(&self) -> usize {
        ((self.channel_width as f64 * self.fc_out).ceil() as usize).max(1)
    }

    /// Configuration bits of one CLB: per BLE a `2^K` LUT table plus one
    /// FF-bypass bit, plus the local input crossbar (modeled as one bit
    /// per (pin, BLE-input) pair).
    pub fn clb_config_bits(&self) -> usize {
        let ble = (1usize << self.k) + 1;
        let xbar = (self.clb_inputs + self.n_ble) * (self.n_ble * self.k);
        self.n_ble * ble + xbar
    }
}

/// What occupies a grid tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKind {
    /// A logic cluster.
    Clb,
    /// An I/O tile (perimeter).
    Io,
    /// The four unusable corners.
    Corner,
}

/// The concrete device: a spec instantiated on a grid.
#[derive(Debug, Clone)]
pub struct Device {
    /// Architecture parameters.
    pub spec: ArchSpec,
    /// Grid width (tiles, including the I/O ring).
    pub width: usize,
    /// Grid height (tiles, including the I/O ring).
    pub height: usize,
}

impl Device {
    /// A device with the given *logic* grid size (CLB columns × rows); the
    /// I/O ring adds one tile on each side.
    pub fn new(spec: ArchSpec, clb_cols: usize, clb_rows: usize) -> Self {
        assert!(clb_cols >= 1 && clb_rows >= 1, "device too small");
        Device { spec, width: clb_cols + 2, height: clb_rows + 2 }
    }

    /// The smallest square device that fits `n_clbs` CLBs and `n_ios` I/O
    /// pads, with `slack` fractional headroom (VPR-style auto-sizing).
    pub fn auto_size(spec: ArchSpec, n_clbs: usize, n_ios: usize, slack: f64) -> Self {
        let mut side = ((n_clbs as f64 * (1.0 + slack)).sqrt().ceil() as usize).max(1);
        loop {
            let io_slots = 4 * side * spec.io_capacity;
            if io_slots >= n_ios && side * side >= n_clbs {
                return Device::new(spec, side, side);
            }
            side += 1;
        }
    }

    /// Tile kind at grid coordinates.
    pub fn tile(&self, x: usize, y: usize) -> TileKind {
        assert!(x < self.width && y < self.height, "tile out of range");
        let on_x_edge = x == 0 || x == self.width - 1;
        let on_y_edge = y == 0 || y == self.height - 1;
        match (on_x_edge, on_y_edge) {
            (true, true) => TileKind::Corner,
            (false, false) => TileKind::Clb,
            _ => TileKind::Io,
        }
    }

    /// Number of CLB tiles.
    pub fn n_clbs(&self) -> usize {
        (self.width - 2) * (self.height - 2)
    }

    /// Number of I/O pad slots.
    pub fn n_io_slots(&self) -> usize {
        (2 * (self.width - 2) + 2 * (self.height - 2)) * self.spec.io_capacity
    }

    /// Total LUT capacity.
    pub fn lut_capacity(&self) -> usize {
        self.n_clbs() * self.spec.n_ble
    }

    /// All CLB coordinates, row-major.
    pub fn clb_tiles(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let w = self.width;
        let h = self.height;
        (1..h - 1).flat_map(move |y| (1..w - 1).map(move |x| (x, y)))
    }

    /// All I/O coordinates.
    pub fn io_tiles(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let w = self.width;
        let h = self.height;
        (0..w)
            .flat_map(move |x| [(x, 0), (x, h - 1)])
            .chain((1..h - 1).flat_map(move |y| [(0, y), (w - 1, y)]))
            .filter(move |&(x, y)| !((x == 0 || x == w - 1) && (y == 0 || y == h - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_consistent() {
        let s = ArchSpec::default();
        assert_eq!(s.k, 6);
        assert!(s.fc_in_abs() >= 1 && s.fc_in_abs() <= s.channel_width);
        assert!(s.clb_config_bits() > s.n_ble * (1 << s.k));
    }

    #[test]
    fn tile_classification() {
        let d = Device::new(ArchSpec::default(), 3, 2);
        assert_eq!(d.width, 5);
        assert_eq!(d.height, 4);
        assert_eq!(d.tile(0, 0), TileKind::Corner);
        assert_eq!(d.tile(4, 3), TileKind::Corner);
        assert_eq!(d.tile(1, 0), TileKind::Io);
        assert_eq!(d.tile(0, 1), TileKind::Io);
        assert_eq!(d.tile(1, 1), TileKind::Clb);
        assert_eq!(d.tile(3, 2), TileKind::Clb);
        assert_eq!(d.n_clbs(), 6);
    }

    #[test]
    fn io_tiles_enumerated_once() {
        let d = Device::new(ArchSpec::default(), 4, 4);
        let ios: Vec<_> = d.io_tiles().collect();
        let unique: std::collections::HashSet<_> = ios.iter().copied().collect();
        assert_eq!(ios.len(), unique.len(), "duplicate I/O tiles");
        assert!(ios.iter().all(|&(x, y)| d.tile(x, y) == TileKind::Io));
        // 4 sides × 4 tiles each
        assert_eq!(ios.len(), 16);
    }

    #[test]
    fn clb_tile_count_matches() {
        let d = Device::new(ArchSpec::default(), 5, 3);
        assert_eq!(d.clb_tiles().count(), d.n_clbs());
        assert!(d.clb_tiles().all(|(x, y)| d.tile(x, y) == TileKind::Clb));
    }

    #[test]
    fn auto_size_fits_demand() {
        let spec = ArchSpec::default();
        let d = Device::auto_size(spec, 100, 60, 0.2);
        assert!(d.n_clbs() >= 100);
        assert!(d.n_io_slots() >= 60);
        // Should not be grossly oversized either.
        assert!(d.n_clbs() <= 200, "auto_size overshoot: {}", d.n_clbs());
    }

    #[test]
    fn auto_size_io_bound_designs() {
        // Tiny logic, many pads: side must grow for the I/O ring.
        let spec = ArchSpec { io_capacity: 2, ..Default::default() };
        let d = Device::auto_size(spec, 1, 200, 0.0);
        assert!(d.n_io_slots() >= 200);
    }
}
