//! Regenerate the **§V.C.1 compile-time** experiment: place & route the
//! instrumented design on (a) the parameterized architecture — mux
//! network in tunable routing, alternatives sharing wires — and (b) a
//! normal LUT architecture — mux network paying LUTs and ordinary
//! wires. Reports wires ("cables"), CLBs and place&route runtime.
//!
//! Paper's findings on small designs: ~3x fewer cables (5316 vs 15699),
//! up to 4x fewer CLBs, and up to 3x faster place & route.
//!
//! On top of the paper experiment, this driver measures the
//! **pfdbg-par** thread-pool layer: the whole offline flow runs
//! `--runs` times serially (1 thread) and `--runs` times with
//! `--par-threads` workers, and the per-stage medians (mapping,
//! placement, routing, generalized-bitstream construction) land in
//! `BENCH_compile.json` together with the speedups. The parallel flow
//! is bit-identical to the serial one (asserted in the tier-1 suite);
//! the speedup you see depends on how many hardware threads the host
//! actually has — recorded as `host_threads`.
//!
//! ```text
//! compile_time [design] [--runs N] [--par-threads N] [--out f.json]
//! ```

use pfdbg_core::{offline, prepare_instrumented, InstrumentConfig, OfflineConfig, PAPER_K};
use pfdbg_map::{map, MapperKind};
use pfdbg_obs::jsonl::{write_object, JsonValue};
use pfdbg_obs::SpanRecord;
use pfdbg_pr::{tpar, TparConfig};
use pfdbg_synth::synthesize;
use pfdbg_util::stats::percentile;
use pfdbg_util::table::Table;
use std::time::Instant;

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1).cloned())
}

fn flag_usize(rest: &[String], name: &str, default: usize) -> usize {
    flag(rest, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} expects a number, got {v:?}"))
    })
}

/// The benchmark stages, named by the spans the offline flow emits.
const STAGES: [(&str, &[&str]); 5] = [
    ("map", &["offline.tconmap"]),
    ("place", &["tpar.place"]),
    ("route", &["tpar.route"]),
    ("genbits", &["offline.lut_bits", "offline.switch_bits", "offline.build_gbs"]),
    ("total", &["offline"]),
];

/// Sum the closed durations of every span whose name is in `names`.
fn stage_ms(spans: &[SpanRecord], names: &[&str]) -> f64 {
    spans
        .iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .filter_map(|s| s.dur)
        .map(|d| d.as_secs_f64() * 1e3)
        .sum()
}

/// Run the offline flow `runs` times at `threads` workers; per stage,
/// the median wall-clock milliseconds across runs.
fn time_offline(
    inst: &pfdbg_core::Instrumented,
    runs: usize,
    threads: usize,
) -> Vec<(&'static str, f64)> {
    let mut per_stage: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); STAGES.len()];
    for run in 0..runs {
        pfdbg_obs::reset();
        offline(inst, &OfflineConfig { k: PAPER_K, threads, ..Default::default() })
            .unwrap_or_else(|e| panic!("offline (run {run}, {threads} threads): {e}"));
        let spans = pfdbg_obs::registry().spans();
        for (slot, (_, names)) in per_stage.iter_mut().zip(STAGES.iter()) {
            slot.push(stage_ms(&spans, names));
        }
    }
    STAGES
        .iter()
        .zip(per_stage)
        .map(|(&(name, _), times)| (name, percentile(&times, 50.0).unwrap_or(f64::NAN)))
        .collect()
}

fn main() {
    let obs = pfdbg_bench::obs_init();
    let rest = obs.rest().to_vec();
    // A small design, as in the paper's early experiments; pass a
    // benchmark name (e.g. `clma`) to run one of the suite instead.
    // `diffeq1` is the default: the largest suite member whose offline
    // flow finishes in about a second per run, so the multi-run speedup
    // measurement stays cheap everywhere.
    let arg = rest.first().filter(|a| !a.starts_with("--")).cloned();
    let runs = flag_usize(&rest, "--runs", 5).max(1);
    let par_threads = flag_usize(&rest, "--par-threads", 8).max(2);
    let out = flag(&rest, "--out").unwrap_or_else(|| "BENCH_compile.json".into());
    let (name, design) = match arg {
        Some(n) => {
            let nw = pfdbg_circuits::build(&n).unwrap_or_else(|| {
                eprintln!("unknown benchmark {n}");
                std::process::exit(1);
            });
            (n, nw)
        }
        None => ("diffeq1".to_string(), pfdbg_circuits::build("diffeq1").expect("suite member")),
    };
    eprintln!("compile-time experiment on {name}...");

    let icfg = InstrumentConfig::paper();
    let (_, _, inst) = prepare_instrumented(&design, &icfg, PAPER_K).expect("prepare");

    // (a) Parameterized resources: the offline flow (TCONMap + TPaR with
    // tunable-net sharing).
    let t0 = Instant::now();
    let off = offline(&inst, &OfflineConfig { k: PAPER_K, ..Default::default() })
        .expect("parameterized flow");
    let param_time = t0.elapsed();
    let param_stats = off.tpar.as_ref().expect("pr ran").stats;

    // (b) Normal LUT architecture: selects as plain inputs, muxes as
    // LUTs, every net exclusive.
    let mut conventional = inst.network.clone();
    let params: Vec<_> = conventional.params().collect();
    for p in params {
        conventional.set_param(p, false);
    }
    let aig = synthesize(&conventional).expect("synthesis");
    let mapping = map(&aig, PAPER_K, MapperKind::PriorityCuts);
    let (mapped, kinds) = mapping.to_network(&aig);
    let t1 = Instant::now();
    let conv = tpar(&mapped, &kinds, &TparConfig::default()).expect("conventional flow");
    let conv_time = t1.elapsed();

    let mut t = Table::new(["metric", "parameterized", "normal LUT arch", "ratio"]);
    let ratio = |a: f64, b: f64| format!("{:.2}x", b / a.max(1e-9));
    t.row([
        "wires used (cables)".to_string(),
        param_stats.wires_used.to_string(),
        conv.stats.wires_used.to_string(),
        ratio(param_stats.wires_used as f64, conv.stats.wires_used as f64),
    ]);
    t.row([
        "CLBs".to_string(),
        param_stats.n_clbs.to_string(),
        conv.stats.n_clbs.to_string(),
        ratio(param_stats.n_clbs as f64, conv.stats.n_clbs as f64),
    ]);
    t.row([
        "routed nets".to_string(),
        param_stats.n_nets.to_string(),
        conv.stats.n_nets.to_string(),
        ratio(param_stats.n_nets as f64, conv.stats.n_nets as f64),
    ]);
    t.row([
        "switches on".to_string(),
        param_stats.n_switches.to_string(),
        conv.stats.n_switches.to_string(),
        ratio(param_stats.n_switches as f64, conv.stats.n_switches as f64),
    ]);
    t.row([
        "place&route time".to_string(),
        format!("{:.2?}", param_stats.runtime),
        format!("{:.2?}", conv_time),
        ratio(param_stats.runtime.as_secs_f64(), conv_time.as_secs_f64()),
    ]);
    println!("=== §V.C.1 compile-time overhead, {name} ===");
    print!("{}", t.render());
    println!("\n(whole parameterized offline stage incl. bitstream generation: {param_time:.2?})");
    println!(
        "paper reference points (small designs): 5316 vs 15699 cables (~3x), \
         up to 4x fewer CLBs, up to 3x faster place & route"
    );

    // Serial-vs-parallel offline flow (pfdbg-par layer). Spans carry the
    // per-stage timing, so the observability layer must be on for the
    // measured runs regardless of --profile.
    let was_enabled = pfdbg_obs::enabled();
    pfdbg_obs::set_enabled(true);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "timing offline flow: {runs} serial runs, then {runs} runs at {par_threads} threads \
         (host has {host_threads} hardware threads)..."
    );
    let serial = time_offline(&inst, runs, 1);
    let parallel = time_offline(&inst, runs, par_threads);
    pfdbg_obs::reset();
    pfdbg_obs::set_enabled(was_enabled);

    let mut pt = Table::new(["stage", "serial (median ms)", "parallel (median ms)", "speedup"]);
    let mut stage_fields: Vec<(String, f64)> = Vec::new();
    for ((stage, s_ms), (_, p_ms)) in serial.iter().zip(parallel.iter()) {
        let speedup = s_ms / p_ms.max(1e-9);
        pt.row([
            stage.to_string(),
            format!("{s_ms:.2}"),
            format!("{p_ms:.2}"),
            format!("{speedup:.2}x"),
        ]);
        stage_fields.push((format!("{stage}_serial_ms"), *s_ms));
        stage_fields.push((format!("{stage}_parallel_ms"), *p_ms));
        stage_fields.push((format!("{stage}_speedup"), speedup));
    }
    println!("\n=== offline flow, serial vs {par_threads} threads ({runs}-run medians) ===");
    print!("{}", pt.render());
    if host_threads < par_threads {
        println!(
            "note: host exposes only {host_threads} hardware thread(s); \
             speedups above are bounded by that, not by the flow"
        );
    }

    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("bench", JsonValue::Str("compile_time".into())),
        ("design", JsonValue::Str(name.clone())),
        ("runs", JsonValue::Num(runs as f64)),
        ("parallel_threads", JsonValue::Num(par_threads as f64)),
        ("host_threads", JsonValue::Num(host_threads as f64)),
    ];
    for (k, v) in &stage_fields {
        fields.push((k.as_str(), JsonValue::Num(*v)));
    }
    let json = write_object(&fields);
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("{out}: {e}"));
    eprintln!("compile_time: wrote {out}");
    obs.finish();
}
