//! Flat JSON Lines reading and writing — the `pfdbg-obs/1` schema.
//!
//! Each line is one JSON object whose values are strings, finite
//! numbers, booleans, or null; nothing nests. That restriction keeps
//! the writer *and* the parser small enough to live in a zero-dependency
//! crate, and the same schema serves the observability export, `pfdbg
//! report`, and the bench binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flat JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A finite number (JSON has only doubles).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// Null.
    Null,
}

/// One parsed line: an ordered field map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Event {
    /// Fields in key order.
    pub fields: BTreeMap<String, JsonValue>,
}

impl Event {
    /// String field, if present and a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(JsonValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Numeric field, if present and a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(JsonValue::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// The `type` discriminator every schema line carries.
    pub fn kind(&self) -> &str {
        self.str("type").unwrap_or("")
    }
}

/// Serialize one object; field order is preserved.
pub fn write_object(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(&mut out, k);
        out.push(':');
        match v {
            JsonValue::Str(s) => write_string(&mut out, s),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; a non-finite number
                    // (e.g. a percentile of an empty histogram) must
                    // not poison the whole line for strict parsers.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Null => out.push_str("null"),
        }
    }
    out.push('}');
    out
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a whole JSONL document; blank lines are skipped. Errors carry
/// the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(ev);
    }
    Ok(events)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_object(line: &str) -> Result<Event, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".into());
    }
    Ok(Event { fields })
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal (expected {lit})"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(JsonValue::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence: try each
                    // prefix length so a following multi-byte char can't
                    // truncate this one.
                    let s = &self.bytes[self.pos - 1..];
                    let ch = (2..=s.len().min(4))
                        .find_map(|n| std::str::from_utf8(&s[..n]).ok())
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| format!("invalid utf-8 at byte {b:#x}"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trips() {
        let line = write_object(&[
            ("type", JsonValue::Str("span".into())),
            ("name", JsonValue::Str("tpar.route \"q\"\n".into())),
            ("dur_us", JsonValue::Num(1234.5)),
            ("count", JsonValue::Num(42.0)),
            ("open", JsonValue::Bool(false)),
            ("parent", JsonValue::Null),
        ]);
        let events = parse_jsonl(&line).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind(), "span");
        assert_eq!(e.str("name"), Some("tpar.route \"q\"\n"));
        assert_eq!(e.num("dur_us"), Some(1234.5));
        assert_eq!(e.num("count"), Some(42.0));
        assert_eq!(e.fields.get("open"), Some(&JsonValue::Bool(false)));
        assert_eq!(e.fields.get("parent"), Some(&JsonValue::Null));
    }

    #[test]
    fn blank_lines_skipped_and_errors_located() {
        let ok = "{\"type\":\"meta\"}\n\n{\"type\":\"counter\",\"value\":3}\n";
        assert_eq!(parse_jsonl(ok).unwrap().len(), 2);
        let err = parse_jsonl("{\"type\":\"meta\"}\n{broken\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let line = write_object(&[
            ("nan", JsonValue::Num(f64::NAN)),
            ("inf", JsonValue::Num(f64::INFINITY)),
            ("ok", JsonValue::Num(1.5)),
        ]);
        let back = parse_jsonl(&line).expect("strict parser accepts the guarded output");
        assert_eq!(back[0].fields.get("nan"), Some(&JsonValue::Null));
        assert_eq!(back[0].fields.get("inf"), Some(&JsonValue::Null));
        assert_eq!(back[0].num("ok"), Some(1.5));
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let line = write_object(&[("text", JsonValue::Str("µs → done\t\"ok\"".into()))]);
        let back = parse_jsonl(&line).unwrap();
        assert_eq!(back[0].str("text"), Some("µs → done\t\"ok\""));
    }
}
