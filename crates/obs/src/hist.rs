//! Lock-free log-linear latency histograms (HDR-style).
//!
//! A [`Histogram`] covers ~1 ns to >10 s of latency with fixed
//! log-linear buckets: each power-of-two range is split into
//! [`SUB_BUCKETS`] linear sub-buckets, bounding the relative width of
//! any bucket to `1/SUB_BUCKETS` (6.25%) and the error of a reported
//! percentile — the midpoint of the selected bucket — to half that.
//! Recording is a single relaxed `fetch_add` on one atomic bucket:
//! no locks, no allocation, safe to call from every serve worker at
//! once. Count, percentiles, and the mean are derived from a bucket
//! snapshot at read time, so a record costs exactly one atomic RMW.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two range (must be a power of two).
pub const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Largest distinguishable value in nanoseconds (`2^34` ns ≈ 17 s,
/// comfortably past the 10 s design range). Larger values clamp into
/// the final bucket instead of overflowing.
pub const MAX_TRACKABLE_NS: u64 = 1 << 34;

/// Bucket count: `SUB_BUCKETS` exact unit buckets for values below
/// `SUB_BUCKETS`, then `SUB_BUCKETS` per power of two up to the clamp,
/// whose own bucket is the last slot.
const N_BUCKETS: usize =
    ((34 - SUB_BITS as usize) * SUB_BUCKETS as usize) + SUB_BUCKETS as usize + 1;

fn bucket_index(v: u64) -> usize {
    let v = v.min(MAX_TRACKABLE_NS);
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let sub = ((v >> (e - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
        (e - SUB_BITS) as usize * SUB_BUCKETS as usize + SUB_BUCKETS as usize + sub
    }
}

/// Inclusive lower bound (ns) of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        i as u64
    } else {
        let g = (i - SUB_BUCKETS as usize) / SUB_BUCKETS as usize;
        let sub = ((i - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
        (SUB_BUCKETS + sub) << g
    }
}

/// Exclusive upper bound (ns) of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i + 1 < N_BUCKETS {
        bucket_lo(i + 1)
    } else {
        u64::MAX
    }
}

/// A fixed-bucket concurrent latency histogram. All operations take
/// `&self`; the type is `Sync` and is usually shared as a `&'static`
/// handle through the metrics hub ([`crate::metrics::LazyHistogram`])
/// or owned directly by a harness (e.g. `serve_load`).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Record one value in nanoseconds — a single relaxed `fetch_add`.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a value given in (possibly fractional) microseconds.
    #[inline]
    pub fn record_us(&self, us: f64) {
        if us.is_finite() && us >= 0.0 {
            self.record((us * 1e3) as u64);
        }
    }

    /// Fold another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Zero every bucket (test isolation / registry reset).
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot { counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect() }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-th percentile (0..=100) in nanoseconds — see
    /// [`HistSnapshot::percentile_ns`].
    pub fn percentile_ns(&self, p: f64) -> Option<f64> {
        self.snapshot().percentile_ns(p)
    }

    /// The `p`-th percentile in microseconds.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        self.percentile_ns(p).map(|ns| ns / 1e3)
    }
}

/// An immutable copy of a histogram's buckets, with the derived
/// statistics computed over a consistent view.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    counts: Vec<u64>,
}

impl HistSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Approximate mean in nanoseconds (bucket midpoints), `None` when
    /// empty.
    pub fn mean_ns(&self) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| n as f64 * midpoint(i))
            .sum();
        Some(sum / total as f64)
    }

    /// The bucket `[lo, hi)` (ns) holding the sample of nearest rank
    /// `ceil(p/100 · count)` — the exact bound the percentile estimate
    /// lives in. `None` when empty or `p` is out of range.
    pub fn percentile_bounds_ns(&self, p: f64) -> Option<(u64, u64)> {
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some((bucket_lo(i), bucket_hi(i)));
            }
        }
        None
    }

    /// Nearest-rank `p`-th percentile (0..=100) in nanoseconds: the
    /// midpoint of the bucket holding the rank-`ceil(p/100 · count)`
    /// sample, matching `pfdbg_util::stats::percentile`'s rank
    /// definition to within half a bucket width (≤ ~3.2% relative).
    pub fn percentile_ns(&self, p: f64) -> Option<f64> {
        let (lo, hi) = self.percentile_bounds_ns(p)?;
        if hi - lo <= 1 {
            Some(lo as f64) // exact unit-width bucket
        } else {
            Some((lo + hi) as f64 / 2.0)
        }
    }

    /// Nearest-rank percentile in microseconds.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        self.percentile_ns(p).map(|ns| ns / 1e3)
    }

    /// Non-empty buckets as `(lo_ns, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), n))
            .collect()
    }

    /// Compact wire form of the non-empty buckets:
    /// `"lo_ns:count;lo_ns:count;..."` — flat-schema friendly (the
    /// JSONL dialect has no arrays).
    pub fn buckets_string(&self) -> String {
        self.nonzero_buckets()
            .iter()
            .map(|(lo, n)| format!("{lo}:{n}"))
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn midpoint(i: usize) -> f64 {
    let lo = bucket_lo(i);
    let hi = bucket_hi(i);
    if hi - lo <= 1 {
        lo as f64
    } else {
        (lo + hi) as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_cover_the_range() {
        let mut prev_hi = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            assert!(lo < hi, "bucket {i}: [{lo}, {hi})");
            assert_eq!(lo, prev_hi, "bucket {i} leaves a gap");
            if i + 1 < N_BUCKETS {
                prev_hi = hi;
            }
        }
        assert_eq!(bucket_lo(N_BUCKETS - 1), MAX_TRACKABLE_NS);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0, 1, 15, 16, 17, 31, 32, 1000, 123_456, 1 << 33, MAX_TRACKABLE_NS, u64::MAX] {
            let i = bucket_index(v);
            let clamped = v.min(MAX_TRACKABLE_NS);
            assert!(
                bucket_lo(i) <= clamped && clamped < bucket_hi(i),
                "{v} -> bucket {i} [{}, {})",
                bucket_lo(i),
                bucket_hi(i)
            );
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB_BUCKETS as usize..N_BUCKETS - 1 {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            let rel = (hi - lo) as f64 / lo as f64;
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-12, "bucket {i}: width {rel}");
        }
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1 µs .. 1 ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile_ns(50.0).unwrap();
        let p99 = h.percentile_ns(99.0).unwrap();
        let p999 = h.percentile_ns(99.9).unwrap();
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
        assert!((p999 - 999_000.0).abs() / 999_000.0 < 0.05, "p999 {p999}");
        assert!(p50 <= p99 && p99 <= p999);
        let mean = h.snapshot().mean_ns().unwrap();
        assert!((mean - 500_500.0).abs() / 500_500.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn merge_and_clear() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10u64, 100, 1000] {
            a.record(v);
            b.record(v * 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert!(a.snapshot().buckets_string().contains(':'));
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.percentile_ns(50.0), None);
        assert_eq!(a.snapshot().buckets_string(), "");
    }

    #[test]
    fn overflow_clamps_instead_of_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record_duration(Duration::from_secs(3600));
        h.record_us(f64::NAN); // ignored
        h.record_us(-1.0); // ignored
        assert_eq!(h.count(), 2);
        let (lo, hi) = h.snapshot().percentile_bounds_ns(100.0).unwrap();
        assert_eq!(lo, MAX_TRACKABLE_NS);
        assert_eq!(hi, u64::MAX);
    }
}
