//! Backpressure under a saturated shard: bounded inboxes shed with
//! well-formed `overloaded` replies, the shed counters surface in
//! `stats`, and sessions on other shards keep meeting their deadlines
//! while one shard is wedged.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_pconf::{CommitPolicy, ScrubPolicy};
use pfdbg_serve::server::{Server, ServerConfig, ServerHandle};
use pfdbg_serve::session::{Engine, FleetOptions, SessionManager};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn build_engine() -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 8,
        n_outputs: 6,
        n_gates: 40,
        depth: 5,
        n_latches: 2,
        seed: 33,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        6,
    )
    .unwrap();
    let off = pfdbg_core::offline(&inst, &OfflineConfig::default()).unwrap();
    Engine::new(inst, off.scg.unwrap(), off.layout.unwrap(), off.icap)
}

/// Two shards, a two-slot client inbox each: small enough that a held
/// shard sheds within a handful of pipelined requests.
fn start_tiny_fleet() -> ServerHandle {
    let manager = SessionManager::with_fleet(
        Arc::new(build_engine()),
        16,
        None,
        CommitPolicy::default(),
        None,
        ScrubPolicy::default(),
        FleetOptions { shards: 2, inbox_capacity: 2 },
    );
    Server::start(manager, ServerConfig { workers: 2, ..ServerConfig::default() }).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> pfdbg_obs::jsonl::Event {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let mut events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        assert_eq!(events.len(), 1, "one reply per request: {reply:?}");
        events.remove(0)
    }

    fn roundtrip(&mut self, line: &str) -> pfdbg_obs::jsonl::Event {
        self.send(line);
        self.recv()
    }
}

fn is_ok(ev: &pfdbg_obs::jsonl::Event) -> bool {
    ev.fields.get("ok") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true))
}

/// A session name placed on each shard, found by probing the stable
/// placement hash.
fn names_per_shard(handle: &ServerHandle) -> [String; 2] {
    let sessions = handle.sessions();
    let mut names: [Option<String>; 2] = [None, None];
    for i in 0.. {
        let name = format!("s{i}");
        let idx = sessions.shard_index(&name);
        if names[idx].is_none() {
            names[idx] = Some(name);
        }
        if names.iter().all(Option::is_some) {
            break;
        }
    }
    [names[0].take().unwrap(), names[1].take().unwrap()]
}

#[test]
fn saturated_shard_sheds_while_the_other_meets_deadlines() {
    let handle = start_tiny_fleet();
    let addr = handle.local_addr();
    let [hot, cold] = names_per_shard(&handle);
    let hot_idx = handle.sessions().shard_index(&hot);

    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert!(is_ok(&a.roundtrip(&format!("{{\"op\":\"open\",\"session\":\"{hot}\"}}"))));
    assert!(is_ok(&b.roundtrip(&format!("{{\"op\":\"open\",\"session\":\"{cold}\"}}"))));
    let n = handle.sessions().engine().n_params();
    let params = "1".repeat(n % 2) + &"0".repeat(n - n % 2);

    // Park the hot shard, then pipeline 10 selects at it. The inbox
    // admits exactly `inbox_capacity` of them; the rest must shed
    // immediately with `overloaded` replies.
    let hold = handle.sessions().hold_shard(hot_idx);
    const PIPELINED: usize = 10;
    let admitted = handle.sessions().inbox_capacity();
    assert!(admitted < PIPELINED, "test needs more requests than inbox slots");
    for i in 0..PIPELINED {
        // A generous deadline so the admitted requests still commit
        // after spending the hold parked in the inbox.
        a.send(&format!(
            "{{\"op\":\"select\",\"session\":\"{hot}\",\"params\":\"{params}\",\
             \"deadline_ms\":60000,\"id\":\"q{i}\"}}"
        ));
    }

    // Wait until the IO thread has parsed and shed the overflow, so the
    // other-shard probes below observe a saturated fleet, not a race.
    let t0 = Instant::now();
    while handle.sessions().shed_totals().0 < (PIPELINED - admitted) as u64 {
        assert!(t0.elapsed().as_secs() < 10, "shed counter never reached the overflow count");
        std::thread::yield_now();
    }

    // The cold shard is unaffected: selects there complete well inside
    // their deadline while the hot shard is still parked.
    let t1 = Instant::now();
    let r = b.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"{cold}\",\"params\":\"{params}\",\"deadline_ms\":5000}}"
    ));
    assert!(is_ok(&r), "cold-shard select failed under hot-shard saturation: {r:?}");
    assert!(t1.elapsed().as_millis() < 5000, "cold-shard select blew its deadline");

    // Shed totals surface in `stats` (served inline, never queued).
    let stats = b.roundtrip("{\"op\":\"stats\"}");
    assert!(is_ok(&stats));
    let shed = stats.num("shed_total").unwrap();
    assert!(shed >= (PIPELINED - admitted) as f64, "stats shed_total {shed} too low");
    assert_eq!(stats.num("shed_total"), stats.num("overloaded_replies"));
    assert_eq!(stats.num("shards"), Some(2.0));
    assert_eq!(stats.num("inbox_capacity"), Some(admitted as f64));

    // Release the shard and read all ten replies in order: the admitted
    // prefix commits, the rest are well-formed `overloaded` errors
    // carrying the shard index and a positive retry hint.
    drop(hold);
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for i in 0..PIPELINED {
        let r = a.recv();
        assert_eq!(r.str("id"), Some(format!("q{i}").as_str()), "replies out of order");
        if is_ok(&r) {
            ok += 1;
            assert!(r.num("turn").is_some());
        } else {
            overloaded += 1;
            assert_eq!(r.str("kind"), Some("overloaded"), "shed reply lacks kind: {r:?}");
            assert!(r.str("error").unwrap().contains("overloaded"));
            assert_eq!(r.num("shard"), Some(hot_idx as f64));
            assert!(r.num("retry_after_ms").unwrap() > 0.0, "retry hint must be positive");
        }
    }
    assert_eq!(ok, admitted, "every admitted request must complete");
    assert_eq!(ok + overloaded, PIPELINED, "every request accounted for");

    // After the backlog drains the shard serves normally again.
    let r = a
        .roundtrip(&format!("{{\"op\":\"select\",\"session\":\"{hot}\",\"params\":\"{params}\"}}"));
    assert!(is_ok(&r), "hot shard did not recover after release: {r:?}");
    handle.shutdown();
}
