//! Replay verification: re-drive a journal against a fresh session and
//! diff every observable fact bit-for-bit.

use crate::driver::OnlineDriver;
use crate::journal::meta_of;
use crate::record::{JournalRecord, ScrubFacts, SelectFacts, SelectOutcome};
use std::path::Path;

/// The first point where a replay stopped matching its journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the diverging record within the journal (meta = 0).
    pub record: usize,
    /// Turn number at the divergence (selects counted so far).
    pub turn: u64,
    /// Which fact diverged (`outcome`, `bits_changed`, `readback_crc`, ...).
    pub field: String,
    /// The journaled value.
    pub expected: String,
    /// The re-driven value.
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record {} (turn {}): {} diverged — journal {}, replay {}",
            self.record, self.turn, self.field, self.expected, self.actual
        )
    }
}

/// The outcome of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Session name from the journal meta.
    pub session: String,
    /// Records examined (including meta and close).
    pub records: usize,
    /// Select turns re-driven.
    pub turns: usize,
    /// Scrub passes re-driven.
    pub scrubs: usize,
    /// Whether the journal had a torn tail (skipped, not fatal).
    pub torn: bool,
    /// The first divergence, if any. `None` = bit-identical replay.
    pub divergence: Option<Divergence>,
}

impl VerifyReport {
    /// True when the replay matched the journal bit-for-bit.
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Verify a journal file. `threads` overrides the recorded SCG thread
/// count (None = replay with the journaled one) — the products must be
/// identical either way, which is exactly what this proves.
pub fn verify_path(path: &Path, threads: Option<usize>) -> Result<VerifyReport, String> {
    let (records, torn) = crate::journal::read_records(path)?;
    let mut report = verify_records(&records, threads)?;
    report.torn = torn;
    Ok(report)
}

/// Verify already-decoded records (see [`verify_path`]).
pub fn verify_records(
    records: &[JournalRecord],
    threads: Option<usize>,
) -> Result<VerifyReport, String> {
    let mut meta = meta_of(records)?.clone();
    if let Some(t) = threads {
        meta.threads = t.max(1);
    }
    let mut driver = OnlineDriver::build(&meta)?;
    Ok(verify_with_driver(&mut driver, records, &meta.session))
}

/// Re-drive `records` through an existing driver and diff every fact.
/// Stops at the first divergence (state is unreliable beyond it).
pub fn verify_with_driver(
    driver: &mut OnlineDriver,
    records: &[JournalRecord],
    session: &str,
) -> VerifyReport {
    let mut report = VerifyReport {
        session: session.to_string(),
        records: records.len(),
        turns: 0,
        scrubs: 0,
        torn: false,
        divergence: None,
    };
    for (i, rec) in records.iter().enumerate() {
        match rec {
            JournalRecord::Meta(_) if i == 0 => {}
            JournalRecord::Meta(_) => {
                report.divergence = Some(Divergence {
                    record: i,
                    turn: report.turns as u64,
                    field: "record".into(),
                    expected: "select/scrub/close".into(),
                    actual: "second meta record".into(),
                });
            }
            JournalRecord::Select(expected) => {
                let actual = match expected.outcome {
                    SelectOutcome::DeadlineMiss => driver.deadline_miss(&expected.params),
                    _ => driver.select(&expected.params),
                };
                report.divergence = diff_select(i, report.turns as u64, expected, &actual);
                report.turns += 1;
            }
            JournalRecord::Scrub(expected) => {
                report.divergence = match driver.scrub() {
                    Ok(actual) => diff_scrub(i, report.turns as u64, expected, &actual),
                    Err(e) => Some(Divergence {
                        record: i,
                        turn: report.turns as u64,
                        field: "scrub".into(),
                        expected: "a scrub report".into(),
                        actual: format!("error: {e}"),
                    }),
                };
                report.scrubs += 1;
            }
            JournalRecord::Close => break,
        }
        if report.divergence.is_some() {
            break;
        }
    }
    report
}

/// Diff one select turn's facts. The comparison set is exactly the
/// deterministic one: outcome kind, SEU flips, readback CRC always;
/// bit/frame/retry/degradation counts when the turn committed.
/// `cache_hit` is interleaving-dependent (shared LRU) and wall-times
/// are unreproducible — neither is compared. Rolled-back turns do not
/// surface retry counts structurally, so they compare on outcome,
/// flips, and CRC (the post-rollback device state).
pub fn diff_select(
    record: usize,
    turn: u64,
    expected: &SelectFacts,
    actual: &SelectFacts,
) -> Option<Divergence> {
    let mk = |field: &str, e: String, a: String| {
        Some(Divergence { record, turn, field: field.into(), expected: e, actual: a })
    };
    if expected.outcome != actual.outcome {
        return mk("outcome", expected.outcome.as_str().into(), actual.outcome.as_str().into());
    }
    if expected.seu_flips != actual.seu_flips {
        return mk("seu_flips", expected.seu_flips.to_string(), actual.seu_flips.to_string());
    }
    if expected.outcome == SelectOutcome::Committed {
        if expected.bits_changed != actual.bits_changed {
            return mk(
                "bits_changed",
                expected.bits_changed.to_string(),
                actual.bits_changed.to_string(),
            );
        }
        if expected.frames_changed != actual.frames_changed {
            return mk(
                "frames_changed",
                expected.frames_changed.to_string(),
                actual.frames_changed.to_string(),
            );
        }
        if expected.retries != actual.retries {
            return mk("retries", expected.retries.to_string(), actual.retries.to_string());
        }
        if expected.degradations != actual.degradations {
            return mk(
                "degradations",
                expected.degradations.to_string(),
                actual.degradations.to_string(),
            );
        }
    }
    if expected.readback_crc != actual.readback_crc {
        return mk(
            "readback_crc",
            format!("{:#018x}", expected.readback_crc),
            format!("{:#018x}", actual.readback_crc),
        );
    }
    None
}

/// Diff one scrub pass's facts (all fields are deterministic).
pub fn diff_scrub(
    record: usize,
    turn: u64,
    expected: &ScrubFacts,
    actual: &ScrubFacts,
) -> Option<Divergence> {
    let fields: [(&str, u64, u64); 7] = [
        ("frames_checked", expected.frames_checked, actual.frames_checked),
        ("upset_frames", expected.upset_frames, actual.upset_frames),
        ("upset_bits", expected.upset_bits, actual.upset_bits),
        ("repaired_frames", expected.repaired_frames, actual.repaired_frames),
        ("failed_frames", expected.failed_frames, actual.failed_frames),
        ("quarantined_frames", expected.quarantined_frames, actual.quarantined_frames),
        ("readback_crc", expected.readback_crc, actual.readback_crc),
    ];
    for (name, e, a) in fields {
        if e != a {
            return Some(Divergence {
                record,
                turn,
                field: format!("scrub.{name}"),
                expected: e.to_string(),
                actual: a.to_string(),
            });
        }
    }
    None
}
