//! The TCP front end: acceptor, fixed worker pool, graceful shutdown.
//!
//! Pure `std::net` — no async runtime. The acceptor thread pushes
//! connections onto a queue; each of the N pool workers owns one
//! connection at a time and serves its line-delimited requests until
//! the client disconnects. Reads carry a short timeout so workers
//! notice a shutdown even mid-connection, and the shutdown path wakes
//! the acceptor with a self-connect instead of relying on platform
//! accept-interruption behavior.

use crate::protocol::{param_bits_string, parse_request, Reply, Request, RequestMeta};
use crate::session::SessionManager;
use crate::telemetry as tel;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker thread count (each owns one connection at a time, so this
    /// bounds concurrent clients).
    pub workers: usize,
    /// Default per-request deadline when the request names none.
    pub default_deadline_ms: f64,
    /// Honor `{"op":"shutdown"}` from clients (handy for smoke tests
    /// and load generators; disable for long-lived servers).
    pub allow_remote_shutdown: bool,
    /// LRU capacity for specialized bitstreams.
    pub cache_capacity: usize,
    /// Background scrub interval in milliseconds; `0` (or anything
    /// non-finite/non-positive) disables the scrubber thread. Each
    /// interval the scrubber walks every session, skipping — never
    /// blocking — any with a select in flight.
    pub scrub_interval_ms: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            default_deadline_ms: 1000.0,
            allow_remote_shutdown: true,
            cache_capacity: 64,
            scrub_interval_ms: 0.0,
        }
    }
}

struct Shared {
    sessions: SessionManager,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    stop: AtomicBool,
}

/// A running server.
pub struct Server;

/// Handle to a running server: its address and the shutdown control.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving in background threads; returns once the
    /// listener is live (so the caller can read the actual port).
    pub fn start(sessions: SessionManager, cfg: ServerConfig) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let local_addr = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;
        let workers = cfg.workers.max(1);
        // Bind the declared SLO budgets to this server's actual
        // configuration before the first observation lands.
        tel::SLO_TURN.set_budget_us(cfg.default_deadline_ms * 1e3);
        if cfg.scrub_interval_ms.is_finite() && cfg.scrub_interval_ms > 0.0 {
            // A scrub walk that takes longer than twice its configured
            // cadence (busy sessions, slow readback) burns the budget.
            tel::SLO_SCRUB.set_budget_us(cfg.scrub_interval_ms * 2.0 * 1e3);
        }
        let shared = Arc::new(Shared {
            sessions,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pfdbg-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
                    .map_err(|e| format!("cannot spawn acceptor: {e}"))?,
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pfdbg-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        let interval = shared.cfg.scrub_interval_ms;
        if interval.is_finite() && interval > 0.0 {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pfdbg-scrub".into())
                    .spawn(move || scrub_loop(&shared))
                    .map_err(|e| format!("cannot spawn scrubber: {e}"))?,
            );
        }
        Ok(ServerHandle { local_addr, shared, threads })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Has shutdown been requested (locally or by a client)?
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// The session manager (for post-run statistics).
    pub fn sessions(&self) -> &SessionManager {
        &self.shared.sessions
    }

    /// Request shutdown and join every thread. Idempotent with a
    /// client-initiated shutdown.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor: it blocks in accept(), so connect to it.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        pfdbg_obs::counter_add("serve.shutdowns", 1);
    }

    /// Block until a client-initiated shutdown stops the server, then
    /// join the threads.
    pub fn wait(mut self) {
        while !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        // Same wake-up dance as a local shutdown: the acceptor blocks in
        // accept() and must be poked loose with a connection.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                tel::CONNECTIONS.add(1);
                let mut q = shared.queue.lock().expect("conn queue");
                q.push_back(s);
                shared.queue_cv.notify_one();
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    shared.queue_cv.notify_all();
}

/// The background scrubber: every `scrub_interval_ms` walk the session
/// table and scrub each session that is not mid-select. Sleeps in short
/// steps so shutdown is never delayed by a long interval, and uses the
/// non-blocking scrub so an in-flight turn is skipped, not raced —
/// the next interval catches up.
fn scrub_loop(shared: &Shared) {
    let interval = Duration::from_secs_f64(shared.cfg.scrub_interval_ms / 1e3);
    let step = interval.min(Duration::from_millis(50));
    let mut last_walk: Option<Instant> = None;
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
            slept += step;
        }
        // The cadence SLO watches walk-to-walk spacing: on time when a
        // walk starts within 2× the configured interval of the last.
        if let Some(prev) = last_walk {
            tel::SLO_SCRUB.observe_us(prev.elapsed().as_secs_f64() * 1e6);
        }
        last_walk = Some(Instant::now());
        for name in shared.sessions.session_names() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            // A vanished session (closed since the snapshot) is a
            // harmless error; a busy one returns Ok(None) and waits
            // for the next interval.
            let _ = shared.sessions.try_scrub_session(&name);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("conn queue");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("conn queue");
                q = guard;
            }
        };
        serve_connection(conn, shared);
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _s = pfdbg_obs::span("serve.connection");
    // Short read timeout: lets the worker poll the stop flag while the
    // client is idle. No Nagle: replies are single small writes and
    // coalescing them behind delayed ACKs costs tens of ms per turn.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&line, shared);
        let stop_after = matches!(reply, LineOutcome::Shutdown(_));
        let mut rendered = match &reply {
            LineOutcome::Reply(r) | LineOutcome::Shutdown(r) => r.render(),
        };
        rendered.push('\n');
        if writer.write_all(rendered.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop_after {
            shared.stop.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            return;
        }
    }
}

enum LineOutcome {
    Reply(Reply),
    Shutdown(Reply),
}

fn handle_line(line: &str, shared: &Shared) -> LineOutcome {
    let _s = pfdbg_obs::span("serve.request");
    tel::REQUESTS.add(1);
    let started = Instant::now();
    let (req, meta) = parse_request(line);
    let outcome = match req {
        Ok(r) => match handle_request(r, &meta, started, shared) {
            Ok(outcome) => outcome,
            Err(e) => {
                tel::ERRORS.add(1);
                LineOutcome::Reply(Reply::error(&meta, &e))
            }
        },
        Err(e) => {
            tel::ERRORS.add(1);
            LineOutcome::Reply(Reply::error(&meta, &e))
        }
    };
    tel::REQUEST_US.record_duration(started.elapsed());
    outcome
}

fn handle_request(
    req: Request,
    meta: &RequestMeta,
    started: Instant,
    shared: &Shared,
) -> Result<LineOutcome, String> {
    let sessions = &shared.sessions;
    let reply = match req {
        Request::Ping => Reply::ok(meta),
        Request::Open { session } => {
            let n = sessions.open(&session)?;
            Reply::ok(meta).str("session", session).num("n_params", n as f64)
        }
        Request::Close { session } => {
            sessions.close(&session)?;
            Reply::ok(meta).str("session", session)
        }
        Request::Stats => {
            let (turns, hits, misses) = sessions.stats();
            let icap = sessions.icap_totals();
            let scrub = sessions.scrub_stats();
            let (journal_records, restores) = sessions.journal_totals();
            Reply::ok(meta)
                .num("sessions", sessions.n_sessions() as f64)
                .num("turns", turns as f64)
                .num("cache_hits", hits as f64)
                .num("cache_misses", misses as f64)
                .num("specialize_threads", sessions.engine().scg.effective_threads() as f64)
                .num("icap_retries", icap.retries as f64)
                .num("icap_degradations", icap.degradations as f64)
                .num("icap_rollbacks", icap.rollbacks as f64)
                .num("scrub_passes", scrub.passes as f64)
                .num("scrub_upsets_detected", scrub.upsets_detected as f64)
                .num("scrub_bits_upset", scrub.bits_upset as f64)
                .num("scrub_repairs", scrub.repairs as f64)
                .num("scrub_quarantined", scrub.quarantined as f64)
                .num("seu_bits_injected", scrub.seu_bits_injected as f64)
                .num("journal_records", journal_records as f64)
                .num("restores", restores as f64)
                .num(
                    "specialize_p50_us",
                    tel::SPECIALIZE_US.get().percentile_us(50.0).unwrap_or(0.0),
                )
                .num(
                    "specialize_p99_us",
                    tel::SPECIALIZE_US.get().percentile_us(99.0).unwrap_or(0.0),
                )
                .num("turn_p99_us", tel::TURN_US.get().percentile_us(99.0).unwrap_or(0.0))
        }
        Request::Health { session } => {
            let h = sessions.health(&session)?;
            Reply::ok(meta)
                .str("session", session)
                .str("verdict", h.verdict.as_str())
                .num("scrubs", h.scrubs as f64)
                .num("upsets_detected", h.upsets_detected as f64)
                .num("bits_upset", h.bits_upset as f64)
                .num("frames_repaired", h.frames_repaired as f64)
                .num("quarantined", h.quarantine.len() as f64)
                .str(
                    "quarantine",
                    h.quarantine.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(","),
                )
                .bool("needs_resync", h.needs_resync)
                .num("turns", h.turns as f64)
                // Fleet-wide SLO burn, so one health poll shows both
                // this session's scrub state and whether the server as
                // a whole is inside its declared budgets.
                .num("slo_specialize_total", tel::SLO_SPECIALIZE.get().total() as f64)
                .num("slo_specialize_burned", tel::SLO_SPECIALIZE.get().burned() as f64)
                .num("slo_turn_total", tel::SLO_TURN.get().total() as f64)
                .num("slo_turn_burned", tel::SLO_TURN.get().burned() as f64)
                .num("slo_scrub_total", tel::SLO_SCRUB.get().total() as f64)
                .num("slo_scrub_burned", tel::SLO_SCRUB.get().burned() as f64)
        }
        Request::Scrub { session } => {
            let r = sessions.scrub_session(&session)?;
            Reply::ok(meta)
                .str("session", session)
                .num("frames_checked", r.frames_checked as f64)
                .num("upset_frames", r.upset_frames as f64)
                .num("upset_bits", r.upset_bits as f64)
                .num("repaired_frames", r.repaired_frames as f64)
                .num("failed_frames", r.failed_frames as f64)
                .num("quarantined_frames", r.quarantined_frames as f64)
                .num("scrub_us", r.scrub_time.as_secs_f64() * 1e6)
        }
        Request::Metrics => {
            use pfdbg_obs::jsonl::{write_object, JsonValue};
            let hub = pfdbg_obs::hub();
            let mut body = String::new();
            for (name, value) in hub.counters() {
                body.push_str(&write_object(&[
                    ("type", JsonValue::Str("counter".into())),
                    ("name", JsonValue::Str(name)),
                    ("value", JsonValue::Num(value as f64)),
                ]));
                body.push('\n');
            }
            for (name, value) in hub.gauges() {
                body.push_str(&write_object(&[
                    ("type", JsonValue::Str("gauge".into())),
                    ("name", JsonValue::Str(name)),
                    ("value", JsonValue::Num(value)),
                ]));
                body.push('\n');
            }
            hub.append_jsonl(&mut body);
            body.push_str(&sessions.sessions_metrics_jsonl());
            Reply::ok(meta)
                .num("sessions", sessions.n_sessions() as f64)
                .num("lines", body.lines().count() as f64)
                .str("metrics", body)
        }
        Request::Dump { session } => match session {
            Some(s) => {
                let flight = sessions.flight_dump(&s)?;
                Reply::ok(meta)
                    .str("session", s)
                    .str("source", "live")
                    .num("events", flight.lines().count() as f64)
                    .str("flight", flight)
            }
            None => {
                let (name, flight) = sessions
                    .last_flight_dump()
                    .ok_or("no automatic flight-recorder dump captured yet")?;
                Reply::ok(meta)
                    .str("session", name)
                    .str("source", "auto")
                    .num("events", flight.lines().count() as f64)
                    .str("flight", flight)
            }
        },
        Request::Record { session } => {
            let (path, records) = sessions.journal_status(&session)?;
            Reply::ok(meta).str("session", session).str("path", path).num("records", records as f64)
        }
        Request::Replay { path } => {
            let (session, records, divergence) =
                sessions.replay_journal(std::path::Path::new(&path))?;
            let mut r = Reply::ok(meta)
                .str("session", session)
                .num("records", records as f64)
                .bool("identical", divergence.is_none());
            if let Some(d) = divergence {
                r = r.str("divergence", d.to_string());
            }
            r
        }
        Request::Shutdown => {
            if !shared.cfg.allow_remote_shutdown {
                return Err("remote shutdown is disabled".into());
            }
            return Ok(LineOutcome::Shutdown(Reply::ok(meta)));
        }
        Request::Select { session, params, signals, deadline_ms } => {
            // `try_from_secs_f64`, not `from_secs_f64`: the parser
            // rejects NaN and negatives, but a huge finite value (say
            // 1e300 ms) would still panic the worker in the infallible
            // constructor. Out-of-range budgets are protocol errors.
            let ms = deadline_ms.unwrap_or(shared.cfg.default_deadline_ms);
            let deadline = Duration::try_from_secs_f64(ms / 1e3)
                .map_err(|_| format!("deadline_ms out of range: {ms}"))?;
            let params = match params {
                Some(p) => p,
                None => sessions.plan(&session, &signals)?,
            };
            // The deadline is enforced inside the transactional select,
            // *before* the commit: a missed deadline never leaves a
            // half-applied turn behind.
            let outcome = sessions.select_within(&session, &params, Some((started, deadline)))?;
            Reply::ok(meta)
                .str("session", session)
                .str("params", param_bits_string(&outcome.params))
                .num("turn", outcome.turn as f64)
                .num("bits_changed", outcome.bits_changed as f64)
                .num("frames_changed", outcome.frames_changed as f64)
                .num("eval_us", outcome.eval_us)
                .num("transfer_us", outcome.transfer_us)
                .num("verify_us", outcome.verify_us)
                .num("retries", outcome.retries as f64)
                .num("degradations", outcome.degradations as f64)
                .str("cache", if outcome.cache_hit { "hit" } else { "miss" })
        }
    };
    Ok(LineOutcome::Reply(reply))
}
