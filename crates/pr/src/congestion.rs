//! Routing-congestion analysis.
//!
//! The paper's §VI flags congestion as the open problem of the approach:
//! "our router will need further adaptations to support the congested
//! regions", because the parameterized mux network puts many alternative
//! routes into the same channels. This module quantifies that pressure:
//! per-channel utilization, a hotspot list, and the share of demand
//! caused by tunable nets — the numbers a congestion-aware router would
//! act on.

use crate::pack::PackedDesign;
use crate::route::RoutedDesign;
use pfdbg_arch::{RRGraph, RRKind, RRNode};
use pfdbg_util::FxHashSet;

/// Utilization of one routing channel (one tile edge's track bundle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelUse {
    /// Tile x of the channel.
    pub x: u16,
    /// Tile y.
    pub y: u16,
    /// Horizontal (ChanX) or vertical (ChanY).
    pub horizontal: bool,
    /// Tracks occupied.
    pub used: u32,
    /// Tracks occupied by tunable-net wiring.
    pub tunable: u32,
    /// Channel width.
    pub capacity: u32,
}

impl ChannelUse {
    /// Occupancy as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.capacity.max(1) as f64
    }
}

/// The whole-design congestion picture.
#[derive(Debug)]
pub struct CongestionReport {
    /// Per-channel usage (only channels with any use).
    pub channels: Vec<ChannelUse>,
    /// Peak channel utilization (0..=1).
    pub peak_utilization: f64,
    /// Mean utilization over *used* channels.
    pub mean_utilization: f64,
    /// Fraction of all occupied wire tracks that belong to tunable nets.
    pub tunable_share: f64,
}

impl CongestionReport {
    /// Channels above the given utilization threshold, worst first.
    pub fn hotspots(&self, threshold: f64) -> Vec<&ChannelUse> {
        let mut v: Vec<&ChannelUse> =
            self.channels.iter().filter(|c| c.utilization() >= threshold).collect();
        v.sort_by(|a, b| b.utilization().partial_cmp(&a.utilization()).expect("finite"));
        v
    }
}

/// Analyze channel occupancy of a routed design.
pub fn analyze(
    design: &PackedDesign,
    routed: &RoutedDesign,
    rrg: &RRGraph,
    channel_width: usize,
) -> CongestionReport {
    // Wire usage per net (each net's union counted once).
    let mut used_by: Vec<(RRNode, bool)> = Vec::new();
    for nr in &routed.routes {
        let tunable = design.nets[nr.net].tunable;
        let mut mine: FxHashSet<RRNode> = FxHashSet::default();
        for b in &nr.branches {
            for &(a, t) in &b.edges {
                mine.insert(a);
                mine.insert(t);
            }
        }
        for n in mine {
            if matches!(rrg.node(n).kind, RRKind::ChanX(_) | RRKind::ChanY(_)) {
                used_by.push((n, tunable));
            }
        }
    }

    // Group by channel (x, y, orientation).
    use std::collections::HashMap;
    let mut map: HashMap<(u16, u16, bool), (u32, u32)> = HashMap::new();
    let mut tunable_tracks = 0u64;
    for (n, tunable) in used_by.iter().copied() {
        let d = rrg.node(n);
        let horizontal = matches!(d.kind, RRKind::ChanX(_));
        let e = map.entry((d.x, d.y, horizontal)).or_insert((0, 0));
        e.0 += 1;
        if tunable {
            e.1 += 1;
            tunable_tracks += 1;
        }
    }

    let mut channels: Vec<ChannelUse> = map
        .into_iter()
        .map(|((x, y, horizontal), (used, tunable))| ChannelUse {
            x,
            y,
            horizontal,
            used,
            tunable,
            capacity: channel_width as u32,
        })
        .collect();
    channels.sort_by_key(|c| (c.y, c.x, c.horizontal));

    let peak = channels.iter().map(ChannelUse::utilization).fold(0.0, f64::max);
    let mean = if channels.is_empty() {
        0.0
    } else {
        channels.iter().map(ChannelUse::utilization).sum::<f64>() / channels.len() as f64
    };
    let total_tracks: u64 = channels.iter().map(|c| c.used as u64).sum();
    let tunable_share =
        if total_tracks == 0 { 0.0 } else { tunable_tracks as f64 / total_tracks as f64 };
    CongestionReport { channels, peak_utilization: peak, mean_utilization: mean, tunable_share }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{Block, PRNet, SourceRef};
    use crate::place::{place, PlaceConfig};
    use crate::route::{route, RouteConfig};
    use pfdbg_arch::{build_rrg, ArchSpec, Device};
    use pfdbg_netlist::NodeId;

    fn routed_fixture(tunable: bool) -> (PackedDesign, RoutedDesign, Device, RRGraph) {
        let blocks = vec![Block::Clb(0), Block::Clb(1), Block::Clb(2)];
        let clusters = vec![Default::default(); 3];
        let nets = vec![PRNet {
            name: "n".into(),
            sources: if tunable {
                vec![SourceRef { block: 0, ble: 0 }, SourceRef { block: 1, ble: 0 }]
            } else {
                vec![SourceRef { block: 0, ble: 0 }]
            },
            source_nodes: vec![NodeId(0); if tunable { 2 } else { 1 }],
            driver: NodeId(0),
            sinks: vec![2],
            tunable,
        }];
        let design = PackedDesign { blocks, clusters, nets, n_tcons: 0 };
        let dev = Device::new(ArchSpec { channel_width: 10, ..Default::default() }, 3, 3);
        let rrg = build_rrg(&dev);
        let placement = place(&design, &dev, &PlaceConfig::default()).unwrap();
        let routed = route(&design, &placement, &dev, &rrg, &RouteConfig::default()).unwrap();
        assert!(routed.success);
        (design, routed, dev, rrg)
    }

    #[test]
    fn report_covers_used_channels() {
        let (design, routed, dev, rrg) = routed_fixture(false);
        let report = analyze(&design, &routed, &rrg, dev.spec.channel_width);
        assert!(!report.channels.is_empty());
        assert!(report.peak_utilization > 0.0 && report.peak_utilization <= 1.0);
        assert!(report.mean_utilization <= report.peak_utilization);
        assert_eq!(report.tunable_share, 0.0);
        // used tracks never exceed capacity on a successful routing.
        for c in &report.channels {
            assert!(c.used <= c.capacity, "{c:?}");
        }
    }

    #[test]
    fn tunable_nets_show_in_the_share() {
        let (design, routed, dev, rrg) = routed_fixture(true);
        let report = analyze(&design, &routed, &rrg, dev.spec.channel_width);
        assert!(report.tunable_share > 0.9, "only net is tunable: {report:?}");
    }

    #[test]
    fn hotspots_sorted_and_filtered() {
        let (design, routed, dev, rrg) = routed_fixture(true);
        let report = analyze(&design, &routed, &rrg, dev.spec.channel_width);
        let hot = report.hotspots(0.0);
        assert_eq!(hot.len(), report.channels.len());
        for w in hot.windows(2) {
            assert!(w[0].utilization() >= w[1].utilization());
        }
        assert!(report.hotspots(1.1).is_empty());
    }
}
