//! The conventional-flow baselines and the Table I / Table II
//! measurement engine.
//!
//! For a given design the paper reports four implementations:
//!
//! * **Initial** — the design mapped without any debug instrumentation,
//! * **SM** — the instrumented design mapped by SimpleMap, the mux
//!   network paying full LUT price (selects become ordinary inputs),
//! * **ABC** — same, mapped by the cut-based baseline,
//! * **Proposed** — the instrumented design mapped by TCONMap, the mux
//!   network dissolving into TLUTs/TCONs.
//!
//! Instrumentation happens on the *mapped* netlist (the paper's flow
//! starts "with the synthesised benchmark (.blif netlist)"): the
//! observable signals are the physical LUT/latch outputs, which is what
//! keeps the proposed area close to the initial area — nothing new has
//! to stay alive, only the existing wires get multiplexed.

use crate::param::{instrument, InstrumentConfig, Instrumented};
use pfdbg_map::{map, map_parameterized_network, MapperKind};
use pfdbg_netlist::Network;
use pfdbg_synth::synthesize;

/// Area/depth measurements for one design (one row of Tables I and II).
#[derive(Debug, Clone)]
pub struct MapperComparison {
    /// Design name.
    pub name: String,
    /// 2-input gate count of the input design.
    pub gates: usize,
    /// LUTs of the uninstrumented design ("Initial").
    pub initial_luts: usize,
    /// LUTs after instrumentation, SimpleMap.
    pub sm_luts: usize,
    /// LUTs after instrumentation, cut-based baseline ("ABC").
    pub abc_luts: usize,
    /// LUTs + TLUTs after instrumentation, TCONMap ("Proposed").
    pub proposed_luts: usize,
    /// TLUTs within the proposed mapping.
    pub tluts: usize,
    /// TCONs within the proposed mapping.
    pub tcons: usize,
    /// Depth of the uninstrumented mapping ("Golden").
    pub depth_golden: u32,
    /// Depth after instrumentation, SimpleMap.
    pub depth_sm: u32,
    /// Depth after instrumentation, ABC baseline.
    pub depth_abc: u32,
    /// Depth after instrumentation, TCONMap.
    pub depth_proposed: u32,
}

impl MapperComparison {
    /// The paper's headline ratio: best conventional mapper vs proposed.
    pub fn reduction_factor(&self) -> f64 {
        self.sm_luts.min(self.abc_luts) as f64 / self.proposed_luts.max(1) as f64
    }
}

/// Map a design to the initial K-LUT network (the "Initial"/"Golden"
/// implementation): synthesis plus depth-oriented cut mapping.
pub fn initial_mapping(design: &Network, k: usize) -> Result<(Network, u32), String> {
    let aig = synthesize(design)?;
    let mapping = map(&aig, k, MapperKind::PriorityCuts);
    let depth = mapping.depth(&aig);
    let (nw, _) = mapping.to_network(&aig);
    Ok((nw, depth))
}

/// Synthesize, map and instrument a design — the front half of the
/// offline generic stage, shared by the comparisons and the full flow.
pub fn prepare_instrumented(
    design: &Network,
    icfg: &InstrumentConfig,
    k: usize,
) -> Result<(Network, u32, Instrumented), String> {
    let (initial, depth) = initial_mapping(design, k)?;
    let inst = instrument(&initial, icfg);
    Ok((initial, depth, inst))
}

/// Strip parameter markings so the instrumented netlist is mapped the
/// conventional way (selects as ordinary inputs — the mux network costs
/// LUTs).
fn deparameterize(nw: &Network) -> Network {
    let mut out = nw.clone();
    let params: Vec<_> = out.params().collect();
    for p in params {
        out.set_param(p, false);
    }
    out
}

/// Measure one design with all four implementations.
pub fn compare_mappers(
    name: &str,
    design: &Network,
    icfg: &InstrumentConfig,
    k: usize,
) -> Result<MapperComparison, String> {
    let (initial, depth_golden, inst) = prepare_instrumented(design, icfg, k)?;
    let initial_luts = initial.n_tables();

    // Conventional mappers see the selects as plain inputs and pay for
    // the multiplexers in LUTs.
    let conventional = deparameterize(&inst.network);
    let aig_conv = synthesize(&conventional)?;
    let sm = map(&aig_conv, k, MapperKind::Simple);
    let abc = map(&aig_conv, k, MapperKind::PriorityCuts);

    // Proposed: parameters honored; muxes dissolve into routing.
    let proposed = map_parameterized_network(&inst.network, k)?;

    Ok(MapperComparison {
        name: name.to_string(),
        gates: design.n_tables(),
        initial_luts,
        sm_luts: sm.lut_area(),
        abc_luts: abc.lut_area(),
        proposed_luts: proposed.stats.luts + proposed.stats.tluts,
        tluts: proposed.stats.tluts,
        tcons: proposed.stats.tcons,
        depth_golden,
        depth_sm: sm.depth(&aig_conv),
        depth_abc: abc.depth(&aig_conv),
        depth_proposed: proposed.stats.depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_circuits::{generate, GenParams};

    use crate::param::PAPER_K;

    fn medium_design() -> Network {
        generate(&GenParams {
            n_inputs: 12,
            n_outputs: 8,
            n_gates: 150,
            depth: 8,
            n_latches: 6,
            seed: 7,
        })
    }

    #[test]
    fn proposed_beats_conventional_mappers() {
        let nw = medium_design();
        let cmp = compare_mappers("gen150", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        assert!(cmp.proposed_luts < cmp.sm_luts && cmp.proposed_luts < cmp.abc_luts, "{cmp:?}");
        assert!(
            cmp.reduction_factor() > 2.5,
            "reduction too small: {} ({cmp:?})",
            cmp.reduction_factor()
        );
        assert!(cmp.tcons > 0, "mux network should produce TCONs");
    }

    #[test]
    fn proposed_area_close_to_initial() {
        let nw = medium_design();
        let cmp = compare_mappers("gen150", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        // The paper's key observation: instrumentation is nearly free in
        // LUT area (Table I: proposed between 0.9x and ~1.8x initial).
        let ratio = cmp.proposed_luts as f64 / cmp.initial_luts as f64;
        assert!((0.5..1.8).contains(&ratio), "proposed/initial = {ratio} ({cmp:?})");
        let conv_ratio = cmp.abc_luts as f64 / cmp.initial_luts as f64;
        assert!(conv_ratio > ratio + 1.0, "conventional should be clearly worse: {cmp:?}");
    }

    #[test]
    fn depth_preserved_by_proposed() {
        let nw = medium_design();
        let cmp = compare_mappers("gen150", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        assert!(
            cmp.depth_proposed <= cmp.depth_golden + 1,
            "proposed depth {} vs golden {}",
            cmp.depth_proposed,
            cmp.depth_golden
        );
        assert!(cmp.depth_sm >= cmp.depth_golden);
    }

    #[test]
    fn tcon_count_tracks_observed_signals() {
        // Mux trees over S signals need about S muxes per covering port;
        // the TCON count must scale with the observed signal count.
        let nw = medium_design();
        let cmp = compare_mappers("gen150", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        assert!(
            cmp.tcons >= cmp.initial_luts,
            "too few TCONs for coverage-2 observability: {cmp:?}"
        );
    }

    #[test]
    fn comparison_is_deterministic() {
        let nw = medium_design();
        let a = compare_mappers("g", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        let b = compare_mappers("g", &nw, &InstrumentConfig::paper(), PAPER_K).unwrap();
        assert_eq!(a.proposed_luts, b.proposed_luts);
        assert_eq!(a.sm_luts, b.sm_luts);
    }
}
