//! Equivalence of the memoized **batch** turn path with the original
//! per-function evaluators: across random generalized bitstreams and
//! random multi-turn parameter walks, `specialize_from_batch`,
//! `specialize_timed_batch` and the packed word-XOR diff
//! (`specialize_diff_from_batch`) must be **bit-identical** to
//! `specialize` / `specialize_diff_from` at 1, 2 and 8 evaluation
//! threads — including across scratch reuse, cold-scratch re-derivation
//! and rolled-back (evaluated but never committed) turns.

use parameterized_fpga_debug::arch::{build_rrg, ArchSpec, BitstreamLayout, Device};
use parameterized_fpga_debug::pconf::{BddManager, GeneralizedBuilder, Scg, SpecializeScratch};
use parameterized_fpga_debug::util::BitVec;
use proptest::prelude::*;
use proptest::TestCaseError;

/// One random scenario: a generalized bitstream (shape scalars plus a
/// seed that derives the tunable functions) and a walk seed that
/// derives the turn sequence. Strides > 1 leave untunable gaps between
/// tunable bits, exercising packing against non-dense addresses.
#[derive(Debug, Clone, Copy)]
struct Case {
    n_params: usize,
    stride: usize,
    n_funcs: usize,
    gbs_seed: u64,
    walk_seed: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (2usize..12, 1usize..4, 1usize..200, any::<u64>(), any::<u64>()).prop_map(
        |(n_params, stride, n_funcs, gbs_seed, walk_seed)| Case {
            n_params,
            stride,
            n_funcs,
            gbs_seed,
            walk_seed,
        },
    )
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Each tunable function folds 1–4 random variables with random
/// and/or/xor steps — enough shared subgraphs that the memoized sweep
/// really skips repeated nodes.
fn build(case: &Case) -> Scg {
    let mut seed = case.gbs_seed | 1;
    let dev = Device::new(ArchSpec { channel_width: 8, ..Default::default() }, 4, 4);
    let rrg = build_rrg(&dev);
    let layout = BitstreamLayout::new(&dev, &rrg, 1312);
    let mut m = BddManager::new();
    let mut b = GeneralizedBuilder::new(&layout, case.n_params);
    for i in 0..case.n_funcs {
        let mut f = m.var((xorshift(&mut seed) as usize % case.n_params) as u32);
        for _ in 0..xorshift(&mut seed) % 4 {
            let v = m.var((xorshift(&mut seed) as usize % case.n_params) as u32);
            f = match xorshift(&mut seed) % 3 {
                0 => m.and(f, v),
                1 => m.or(f, v),
                _ => m.xor(f, v),
            };
        }
        b.set_func(&m, i * case.stride, f);
    }
    Scg::new(m, b.build().expect("random gbs builds"))
}

/// A walk of 1–8 turns; each turn flips 0–3 parameter bits of a
/// running assignment — adjacent turns differ in just a few bits, like
/// a real debug session (and unlike independent random vectors).
fn walk_of(case: &Case) -> Vec<Vec<(usize, bool)>> {
    let mut seed = case.walk_seed | 1;
    let turns = 1 + (xorshift(&mut seed) as usize) % 8;
    (0..turns)
        .map(|_| {
            let flips = (xorshift(&mut seed) as usize) % 4;
            (0..flips)
                .map(|_| {
                    let i = xorshift(&mut seed) as usize % case.n_params;
                    let v = xorshift(&mut seed) % 2 == 1;
                    (i, v)
                })
                .collect()
        })
        .collect()
}

/// Full-turn walk at one thread count: the batch specializers and the
/// packed diff agree bit-for-bit with the per-function paths. Turn
/// `rollback` evaluates without committing; the next turn's diff must
/// still describe the loaded configuration.
fn check_walk(
    scg: &Scg,
    case: &Case,
    walk: &[Vec<(usize, bool)>],
    rollback: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let mut scratch = SpecializeScratch::new();
    let mut params = BitVec::zeros(case.n_params);
    let mut prev_params = params.clone();
    let mut current = scg.specialize(&params);
    for (turn, flips) in walk.iter().enumerate() {
        for &(i, v) in flips {
            params.set(i, v);
        }
        // Ground truth: fresh per-function specialization.
        let want = scg.specialize(&params);

        // Batch full specialization from an arbitrary prior bitstream,
        // and the timed variant.
        let got = scg.specialize_from_batch(&current, &params, &mut scratch).unwrap();
        prop_assert_eq!(&got, &want, "specialize_from_batch, threads={}", threads);
        let (timed, _) = scg.specialize_timed_batch(&params, &mut scratch);
        prop_assert_eq!(&timed, &want, "specialize_timed_batch, threads={}", threads);

        // Packed word-XOR diff vs the per-function diff.
        let serial_diff = scg.specialize_diff_from(&prev_params, &current, &params).unwrap();
        let batch_diff =
            scg.specialize_diff_from_batch(&prev_params, &params, &mut scratch).unwrap().to_vec();
        prop_assert_eq!(&batch_diff, &serial_diff, "diff, threads={}", threads);

        if turn == rollback {
            // Rolled-back turn: evaluation happened, commit did not.
            continue;
        }
        for &(addr, v) in &batch_diff {
            current.set(addr, v);
        }
        prop_assert_eq!(&current, &want, "diff write-set reaches the target");
        scratch.commit(&params);
        prev_params.clone_from(&params);
    }
    Ok(())
}

/// The diff write set is the *minimal* one: strictly ascending
/// addresses, no duplicates, and every entry really flips a loaded bit.
fn check_minimal(scg: &Scg, case: &Case, walk: &[Vec<(usize, bool)>]) -> Result<(), TestCaseError> {
    let mut scratch = SpecializeScratch::new();
    let mut params = BitVec::zeros(case.n_params);
    let mut prev_params = params.clone();
    let mut current = scg.specialize(&params);
    for flips in walk {
        for &(i, v) in flips {
            params.set(i, v);
        }
        let diff =
            scg.specialize_diff_from_batch(&prev_params, &params, &mut scratch).unwrap().to_vec();
        let mut last = None;
        for &(addr, v) in &diff {
            prop_assert!(last < Some(addr), "addresses strictly ascending");
            last = Some(addr);
            prop_assert_ne!(current.get(addr), v);
            current.set(addr, v);
        }
        prop_assert_eq!(&current, &scg.specialize(&params));
        scratch.commit(&params);
        prev_params.clone_from(&params);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn batch_paths_match_per_function_paths(case in arb_case()) {
        let mut scg = build(&case);
        let walk = walk_of(&case);
        let rollback = (case.walk_seed >> 32) as usize % walk.len();
        for threads in [1usize, 2, 8] {
            scg.set_threads(threads);
            check_walk(&scg, &case, &walk, rollback, threads)?;
        }
    }

    #[test]
    fn batch_diff_is_minimal_and_sorted(case in arb_case()) {
        check_minimal(&build(&case), &case, &walk_of(&case))?;
    }
}
