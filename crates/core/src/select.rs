//! Critical-signal selection (the paper's §VI planned extension).
//!
//! Parameterizing *every* net maximizes visibility but also parameter
//! count, router stress and compile time. This pass ranks internal nets
//! by debugging value and keeps the top N. The ranking follows the
//! signal-selection literature the paper cites (Hung & Wilton): signals
//! that *restore* the most downstream state when observed are worth the
//! most — approximated here by fanout (wide influence), fan-in cone size
//! (summarizes much logic) and sequential adjacency (latch outputs carry
//! state).

use pfdbg_netlist::{Network, NodeId};
use pfdbg_util::IdVec;

/// A ranked signal.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSignal {
    /// The node.
    pub id: NodeId,
    /// Net name.
    pub name: String,
    /// Composite score (higher = more valuable to observe).
    pub score: f64,
}

/// Rank all observable signals, best first. Deterministic (ties broken
/// by name).
pub fn rank_signals(nw: &Network) -> Vec<RankedSignal> {
    let fanouts = nw.fanout_counts();
    let cones = cone_sizes(nw);
    let depths = nw.depths().unwrap_or_else(|_| IdVec::filled(0, nw.n_nodes()));
    let max_depth = depths.values().copied().max().unwrap_or(0).max(1) as f64;

    let mut ranked: Vec<RankedSignal> = crate::param::observable_signals(nw)
        .into_iter()
        .map(|id| {
            let node = nw.node(id);
            let fanout = fanouts[id] as f64;
            let cone = cones[id] as f64;
            let state_bonus = if node.is_latch() { 4.0 } else { 0.0 };
            // Mid-depth signals summarize both input and output behaviour.
            let d = depths[id] as f64 / max_depth;
            let centrality = 1.0 - (2.0 * d - 1.0).abs();
            let score = fanout.ln_1p() * 2.0 + cone.ln_1p() + state_bonus + centrality;
            RankedSignal { id, name: node.name.clone(), score }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite scores").then_with(|| a.name.cmp(&b.name))
    });
    ranked
}

/// The top `n` signal names by rank.
pub fn select_critical(nw: &Network, n: usize) -> Vec<String> {
    rank_signals(nw).into_iter().take(n).map(|r| r.name).collect()
}

/// Transitive fan-in cone size (table nodes only) per node, computed in
/// one topological pass with saturation (exact counting would need sets;
/// the saturated sum upper bound ranks identically for tree-like logic).
fn cone_sizes(nw: &Network) -> IdVec<NodeId, u32> {
    let order = nw.topo_order().unwrap_or_default();
    let mut size: IdVec<NodeId, u32> = IdVec::filled(0, nw.n_nodes());
    for id in order {
        let node = nw.node(id);
        if node.is_table() {
            let mut s = 1u32;
            for &f in &node.fanins {
                s = s.saturating_add(size[f]);
            }
            size[id] = s.min(1_000_000);
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_netlist::truth::gates;

    fn design() -> Network {
        let mut nw = Network::new("d");
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        // hub: feeds three consumers.
        let hub = nw.add_table("hub", vec![a, b], gates::and2());
        let u1 = nw.add_table("u1", vec![hub, a], gates::or2());
        let u2 = nw.add_table("u2", vec![hub, b], gates::xor2());
        let u3 = nw.add_table("u3", vec![hub, u1], gates::and2());
        let q = nw.add_latch("state", u3, false);
        nw.add_output("o1", u2);
        nw.add_output("o2", q);
        nw
    }

    #[test]
    fn high_fanout_and_state_rank_high() {
        let nw = design();
        let ranked = rank_signals(&nw);
        let pos = |name: &str| ranked.iter().position(|r| r.name == name).unwrap_or(usize::MAX);
        // The hub (fanout 3) must outrank single-use leaves like u2.
        assert!(pos("hub") < pos("u2"), "{ranked:?}");
        // The latch gets the state bonus: top half.
        assert!(pos("state") < ranked.len().div_ceil(2), "{ranked:?}");
    }

    #[test]
    fn select_critical_truncates_deterministically() {
        let nw = design();
        let top2a = select_critical(&nw, 2);
        let top2b = select_critical(&nw, 2);
        assert_eq!(top2a, top2b);
        assert_eq!(top2a.len(), 2);
        let all = select_critical(&nw, 100);
        assert_eq!(all.len(), 5); // hub, u1, u2, u3, state
        assert_eq!(&all[..2], &top2a[..]);
    }

    #[test]
    fn scores_are_finite_and_ordered() {
        let nw = design();
        let ranked = rank_signals(&nw);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert!(w[0].score.is_finite());
        }
    }
}
