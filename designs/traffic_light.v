// A 2-bit Moore FSM: traffic light with a pedestrian request input.
// States (s1 s0): 00 green, 01 yellow, 10 red, 11 red+walk.
module traffic_light(input clk, input req, output green, output yellow, output red, output walk);
  reg s0, s1;
  wire go_yellow, in_green, in_yellow, in_red, in_walk;

  assign in_green  = ~s1 & ~s0;
  assign in_yellow = ~s1 &  s0;
  assign in_red    =  s1 & ~s0;
  assign in_walk   =  s1 &  s0;

  assign go_yellow = in_green & req;

  // next s0 = green&req | red (red -> walk)
  always @(posedge clk) s0 <= go_yellow | in_red;
  // next s1 = yellow | red (yellow -> red -> walk -> green)
  always @(posedge clk) s1 <= in_yellow | in_red;

  assign green  = in_green;
  assign yellow = in_yellow;
  assign red    = in_red | in_walk;
  assign walk   = in_walk;
endmodule
