//! Structured circuit generators: real arithmetic and sequential blocks
//! (the kind of ASIC datapaths the paper's introduction motivates),
//! complementing the random Rent's-rule generator.

use pfdbg_netlist::truth::gates;
use pfdbg_netlist::{Network, NodeId};

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`.
pub fn ripple_adder(n: usize) -> Network {
    assert!(n >= 1);
    let mut nw = Network::new(format!("adder{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| nw.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..n).map(|i| nw.add_input(format!("b{i}"))).collect();
    let mut carry = nw.add_input("cin");
    for i in 0..n {
        let axb = nw.add_table(format!("axb{i}"), vec![a[i], b[i]], gates::xor2());
        let s = nw.add_table(format!("s{i}"), vec![axb, carry], gates::xor2());
        let g = nw.add_table(format!("g{i}"), vec![a[i], b[i]], gates::and2());
        let pr = nw.add_table(format!("p{i}"), vec![axb, carry], gates::and2());
        carry = nw.add_table(format!("c{i}"), vec![g, pr], gates::or2());
        nw.add_output(format!("s{i}"), s);
    }
    nw.add_output("cout", carry);
    nw
}

/// An `n×n` array multiplier: inputs `a0..`, `b0..`; outputs `p0..p(2n-1)`.
pub fn array_multiplier(n: usize) -> Network {
    assert!((1..=8).contains(&n), "keep the array manageable");
    let mut nw = Network::new(format!("mult{n}x{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| nw.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..n).map(|i| nw.add_input(format!("b{i}"))).collect();

    // Partial products.
    let mut pp = vec![vec![]; n];
    for (j, &bj) in b.iter().enumerate() {
        for (i, &ai) in a.iter().enumerate() {
            let t = nw.add_table(format!("pp{i}_{j}"), vec![ai, bj], gates::and2());
            pp[j].push(t);
        }
    }

    // Row-by-row carry-save style accumulation with ripple rows (simple,
    // correct, plenty of internal nets to observe).
    let zero = nw.add_const("$zero", false);
    let mut acc: Vec<NodeId> = (0..2 * n).map(|_| zero).collect();
    for (j, row) in pp.iter().enumerate() {
        let mut carry = zero;
        for (i, &bit) in row.iter().enumerate() {
            let pos = i + j;
            let axb = nw.add_table(nw.fresh_name("x"), vec![acc[pos], bit], gates::xor2());
            let sum = nw.add_table(nw.fresh_name("s"), vec![axb, carry], gates::xor2());
            let g = nw.add_table(nw.fresh_name("g"), vec![acc[pos], bit], gates::and2());
            let p = nw.add_table(nw.fresh_name("p"), vec![axb, carry], gates::and2());
            carry = nw.add_table(nw.fresh_name("c"), vec![g, p], gates::or2());
            acc[pos] = sum;
        }
        // Propagate the row's carry into the remaining accumulator bits.
        let mut pos = j + row.len();
        while pos < 2 * n {
            let sum = nw.add_table(nw.fresh_name("s"), vec![acc[pos], carry], gates::xor2());
            carry = nw.add_table(nw.fresh_name("c"), vec![acc[pos], carry], gates::and2());
            acc[pos] = sum;
            pos += 1;
        }
    }
    for (i, &bit) in acc.iter().enumerate() {
        nw.add_output(format!("p{i}"), bit);
    }
    nw
}

/// A Fibonacci LFSR over the given tap positions (bit indices into the
/// register, LSB = stage 0); `width` stages, enable input, serial output.
pub fn lfsr(width: usize, taps: &[usize]) -> Network {
    assert!(width >= 2);
    assert!(!taps.is_empty() && taps.iter().all(|&t| t < width), "taps within width");
    let mut nw = Network::new(format!("lfsr{width}"));
    let en = nw.add_input("en");
    // Stage 0 seeds to 1 so the register is never all-zero.
    let q: Vec<NodeId> = (0..width).map(|i| nw.add_latch(format!("q{i}"), en, i == 0)).collect();

    // Feedback = XOR of taps.
    let mut fb = q[taps[0]];
    for &t in &taps[1..] {
        fb = nw.add_table(nw.fresh_name("fb"), vec![fb, q[t]], gates::xor2());
    }
    // Shift with enable: qi' = en ? q(i-1) : qi ; q0' = en ? fb : q0.
    let mux = |nw: &mut Network, name: String, d0: NodeId, d1: NodeId, s: NodeId| {
        nw.add_table(name, vec![d0, d1, s], gates::mux21())
    };
    let name0 = nw.fresh_name("d0");
    let d0 = mux(&mut nw, name0, q[0], fb, en);
    nw.set_latch_data(q[0], d0);
    for i in 1..width {
        let name_i = nw.fresh_name(&format!("d{i}"));
        let di = mux(&mut nw, name_i, q[i], q[i - 1], en);
        nw.set_latch_data(q[i], di);
    }
    nw.add_output("serial", q[width - 1]);
    for (i, &qi) in q.iter().enumerate() {
        nw.add_output(format!("q{i}"), qi);
    }
    nw
}

/// A `width`-bit binary up-counter with enable and synchronous wrap.
pub fn counter(width: usize) -> Network {
    assert!(width >= 1);
    let mut nw = Network::new(format!("counter{width}"));
    let en = nw.add_input("en");
    let q: Vec<NodeId> = (0..width).map(|i| nw.add_latch(format!("q{i}"), en, false)).collect();
    let mut carry = en;
    for (i, &qi) in q.iter().enumerate() {
        let d = nw.add_table(format!("d{i}"), vec![qi, carry], gates::xor2());
        nw.set_latch_data(qi, d);
        if i + 1 < width {
            carry = nw.add_table(format!("cy{i}"), vec![qi, carry], gates::and2());
        }
        nw.add_output(format!("q{i}"), q[i]);
    }
    nw
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_netlist::sim::Simulator;
    use std::collections::HashMap;

    fn drive_comb(nw: &Network, values: &[(&str, u64)]) -> HashMap<String, u64> {
        let mut sim = Simulator::new(nw).unwrap();
        let inputs: HashMap<NodeId, u64> =
            values.iter().map(|(n, v)| (nw.find(n).unwrap(), *v)).collect();
        sim.settle(&inputs);
        nw.outputs().iter().map(|p| (p.name.clone(), sim.value(p.driver))).collect()
    }

    #[test]
    fn adder_adds_exhaustively() {
        let n = 4;
        let nw = ripple_adder(n);
        nw.validate().unwrap();
        // Drive all (a, b, cin) combinations bit-parallel: lane L encodes
        // one test case; 64 lanes per settle.
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in 0..2u64 {
                    let mut values: Vec<(String, u64)> = Vec::new();
                    for i in 0..n {
                        values.push((format!("a{i}"), ((a >> i) & 1) * !0u64));
                        values.push((format!("b{i}"), ((b >> i) & 1) * !0u64));
                    }
                    values.push(("cin".to_string(), cin * !0u64));
                    let refs: Vec<(&str, u64)> =
                        values.iter().map(|(s, v)| (s.as_str(), *v)).collect();
                    let out = drive_comb(&nw, &refs);
                    let mut got = 0u64;
                    for i in 0..n {
                        if out[&format!("s{i}")] & 1 == 1 {
                            got |= 1 << i;
                        }
                    }
                    if out["cout"] & 1 == 1 {
                        got |= 1 << n;
                    }
                    assert_eq!(got, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let n = 3;
        let nw = array_multiplier(n);
        nw.validate().unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut values: Vec<(String, u64)> = Vec::new();
                for i in 0..n {
                    values.push((format!("a{i}"), ((a >> i) & 1) * !0u64));
                    values.push((format!("b{i}"), ((b >> i) & 1) * !0u64));
                }
                let refs: Vec<(&str, u64)> = values.iter().map(|(s, v)| (s.as_str(), *v)).collect();
                let out = drive_comb(&nw, &refs);
                let mut got = 0u64;
                for i in 0..2 * n {
                    if out[&format!("p{i}")] & 1 == 1 {
                        got |= 1 << i;
                    }
                }
                assert_eq!(got, a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn counter_counts_and_wraps() {
        let nw = counter(3);
        nw.validate().unwrap();
        let mut sim = Simulator::new(&nw).unwrap();
        let en = nw.find("en").unwrap();
        let read = |sim: &Simulator| -> u64 {
            (0..3)
                .map(|i| (sim.value_lane(nw.find(&format!("q{i}")).unwrap(), 0) as u64) << i)
                .sum()
        };
        let inputs = HashMap::from([(en, 1u64)]);
        for expect in 0..10u64 {
            sim.settle(&inputs);
            assert_eq!(read(&sim), expect % 8, "step {expect}");
            sim.step(&inputs);
        }
        // Disabled: holds.
        let hold = HashMap::from([(en, 0u64)]);
        sim.settle(&hold);
        let v = read(&sim);
        sim.step(&hold);
        sim.settle(&hold);
        assert_eq!(read(&sim), v);
    }

    #[test]
    fn lfsr_is_maximal_length_for_known_taps() {
        // width 4, taps {3, 2} -> maximal period 2^4 - 1 = 15.
        let nw = lfsr(4, &[3, 2]);
        nw.validate().unwrap();
        let mut sim = Simulator::new(&nw).unwrap();
        let en = nw.find("en").unwrap();
        let inputs = HashMap::from([(en, 1u64)]);
        let read = |sim: &Simulator| -> u64 {
            (0..4)
                .map(|i| (sim.value_lane(nw.find(&format!("q{i}")).unwrap(), 0) as u64) << i)
                .sum()
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            sim.settle(&inputs);
            let s = read(&sim);
            assert_ne!(s, 0, "LFSR must never reach all-zero");
            assert!(seen.insert(s), "state {s} repeated early");
            sim.step(&inputs);
        }
        sim.settle(&inputs);
        assert_eq!(read(&sim), 1, "period 15 returns to the seed");
    }

    #[test]
    fn structured_blocks_run_through_the_mappers() {
        for nw in [ripple_adder(4), array_multiplier(3), counter(4), lfsr(5, &[4, 2])] {
            let aig = pfdbg_synth::synthesize(&nw).unwrap();
            let m = pfdbg_map::map(&aig, 4, pfdbg_map::MapperKind::PriorityCuts);
            assert!(m.lut_area() > 0, "{}", nw.name);
            let (mapped, _) = m.to_network(&aig);
            assert!(pfdbg_netlist::sim::comb_equivalent(&nw, &mapped, 32, 5).unwrap());
        }
    }
}
