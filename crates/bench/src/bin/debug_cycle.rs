//! Regenerate the **Fig. 4** comparison: latency of the conventional
//! debug cycle (recompile per signal change) versus the proposed one
//! (one offline generic stage, then microsecond specializations).
//!
//! The conventional per-change cost is the *measured* place & route time
//! of the instrumented design on this machine, scaled by the paper's
//! observation that real-tool compiles take minutes to hours; the
//! proposed per-change cost is the measured SCG evaluation plus the
//! modeled partial-reconfiguration transfer.

use pfdbg_core::{
    offline, prepare_instrumented, DebugSession, InstrumentConfig, OfflineConfig, PAPER_K,
};
use pfdbg_map::{map, MapperKind};
use pfdbg_pconf::OnlineReconfigurator;
use pfdbg_pr::{tpar, TparConfig};
use pfdbg_synth::synthesize;
use pfdbg_util::table::Table;
use std::time::{Duration, Instant};

fn main() {
    let obs = pfdbg_bench::obs_init();
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 14,
        n_outputs: 10,
        n_gates: 120,
        depth: 7,
        n_latches: 8,
        seed: 4242,
    });
    eprintln!("debug-cycle experiment...");

    let icfg = InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 };
    let (_, _, inst) = prepare_instrumented(&design, &icfg, PAPER_K).expect("prepare");

    // Proposed: one offline stage, then cheap turns.
    let t0 = Instant::now();
    let off = offline(&inst, &OfflineConfig { k: PAPER_K, ..Default::default() }).expect("offline");
    let offline_time = t0.elapsed();
    let scg = off.scg.expect("scg");
    let layout = off.layout.expect("layout");
    let online = OnlineReconfigurator::new(scg, layout, off.icap);
    let dut = inst.network.clone();
    let observable: Vec<String> = inst.observable().into_iter().map(str::to_string).collect();
    let mut session = DebugSession::new(inst, Some(online));
    // Measure a representative turn.
    session.observe(&dut, &[&observable[0]], 8, 1, &[]).expect("turn");
    session.observe(&dut, &[&observable[1]], 8, 2, &[]).expect("turn");
    let turn_cost =
        session.turns().last().and_then(|t| t.stats).map(|s| s.total()).unwrap_or(Duration::ZERO);

    // Conventional: every signal change is a recompile (re-instrument +
    // re-place&route). Measure one compile of the conventional design.
    let mut conventional = dut.clone();
    let params: Vec<_> = conventional.params().collect();
    for p in params {
        conventional.set_param(p, false);
    }
    let aig = synthesize(&conventional).expect("synth");
    let mapping = map(&aig, PAPER_K, MapperKind::PriorityCuts);
    let (mapped, kinds) = mapping.to_network(&aig);
    let t1 = Instant::now();
    let _ = tpar(&mapped, &kinds, &TparConfig::default()).expect("conventional pr");
    let recompile = t1.elapsed();

    println!("=== Fig. 4: debug-cycle latency model ===");
    println!("offline generic stage (one-off):        {offline_time:.2?}");
    println!("proposed, per signal change:            {turn_cost:.2?}");
    println!(
        "conventional, per signal change:        {recompile:.2?} (measured P&R on this substrate)"
    );
    println!(
        "                                        (real vendor compiles: minutes to hours per the paper)"
    );

    let mut t = Table::new([
        "signal changes",
        "conventional total",
        "proposed total (incl. offline)",
        "speedup",
    ]);
    for changes in [1u32, 5, 20, 100, 1000] {
        let conv = recompile * changes;
        let prop = offline_time + turn_cost * changes;
        t.row([
            changes.to_string(),
            format!("{conv:.2?}"),
            format!("{prop:.2?}"),
            format!("{:.1}x", conv.as_secs_f64() / prop.as_secs_f64().max(1e-12)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nthe offline stage amortizes after the first few turns; every further signal\n\
         change costs microseconds instead of a compile — the paper's Fig. 4(b) loop"
    );
    obs.finish();
}
