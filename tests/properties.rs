//! Property-based tests over the core invariants, driven by proptest:
//! random circuits through BLIF round-trips, synthesis, mapping and
//! instrumentation must preserve function; random parameterized mux
//! networks must classify and specialize correctly.

use parameterized_fpga_debug::circuits::{generate_with_mix, GateMix, GenParams};
use parameterized_fpga_debug::core::{instrument, InstrumentConfig};
use parameterized_fpga_debug::map::{map, map_parameterized_network, MapperKind};
use parameterized_fpga_debug::netlist::truth::TruthTable;
use parameterized_fpga_debug::netlist::{blif, sim};
use parameterized_fpga_debug::synth::{synthesize, to_network};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GenParams> {
    (2usize..24, 1usize..8, 10usize..120, 2usize..8, 0usize..6, any::<u64>()).prop_map(
        |(n_inputs, n_outputs, n_gates, depth, n_latches, seed)| GenParams {
            n_inputs: n_inputs.max(2),
            n_outputs,
            n_gates: n_gates.max(depth),
            depth,
            n_latches,
            seed,
        },
    )
}

fn arb_mix() -> impl Strategy<Value = GateMix> {
    (0.0f64..0.9, 0.0f64..0.5).prop_map(|(xor, nand)| GateMix { xor, nand })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// BLIF write→parse is the identity up to logical equivalence.
    #[test]
    fn blif_roundtrip_preserves_function(p in arb_params(), mix in arb_mix()) {
        let nw = generate_with_mix(&p, mix);
        let text = blif::write(&nw);
        let back = blif::parse(&text).unwrap();
        back.validate().unwrap();
        prop_assert!(sim::comb_equivalent(&nw, &back, 16, p.seed).unwrap());
    }

    /// Synthesis (strash + balance + sweep) preserves function.
    #[test]
    fn synthesis_preserves_function(p in arb_params(), mix in arb_mix()) {
        let nw = generate_with_mix(&p, mix);
        let aig = synthesize(&nw).unwrap();
        let back = to_network(&aig);
        prop_assert!(sim::comb_equivalent(&nw, &back, 16, p.seed ^ 1).unwrap());
    }

    /// Technology mapping preserves function, for every mapper and K.
    #[test]
    fn mapping_preserves_function(p in arb_params(), k in 3usize..7) {
        let nw = generate_with_mix(&p, GateMix::default());
        let aig = synthesize(&nw).unwrap();
        for kind in [MapperKind::Simple, MapperKind::PriorityCuts] {
            let mapping = map(&aig, k, kind);
            for e in &mapping.elements {
                prop_assert!(e.leaves.len() <= k, "{kind:?} exceeded K");
            }
            let (mapped, _) = mapping.to_network(&aig);
            mapped.validate().unwrap();
            prop_assert!(
                sim::comb_equivalent(&nw, &mapped, 16, p.seed ^ 2).unwrap(),
                "{kind:?} broke the function"
            );
        }
    }

    /// Instrumentation leaves the original function intact AND the trace
    /// outputs really carry the selected signals (checked by the
    /// parameterized mapping being equivalent to the instrumented
    /// netlist).
    #[test]
    fn instrumentation_and_tconmap_preserve_function(
        p in arb_params(),
        n_ports in 1usize..4,
        coverage in 1usize..3,
    ) {
        let nw = generate_with_mix(&p, GateMix::default());
        let inst = instrument(
            &nw,
            &InstrumentConfig { n_ports, max_signals: None, coverage },
        );
        // Original outputs unchanged.
        let report = parameterized_fpga_debug::emu::lockstep(&nw, &inst.network, 32, p.seed)
            .unwrap();
        prop_assert!(report.first_divergence.is_none());
        // TCONMap output is equivalent to the instrumented network
        // (including all trace ports).
        let mp = map_parameterized_network(&inst.network, 4).unwrap();
        prop_assert!(sim::comb_equivalent(&inst.network, &mp.network, 16, p.seed ^ 3).unwrap());
        // And the mux trees really became TCONs.
        prop_assert!(mp.stats.tcons > 0 || inst.observable().len() <= 1);
    }

    /// Truth-table algebra: Shannon expansion reconstructs any table.
    #[test]
    fn shannon_expansion_identity(word in any::<u64>(), n in 1usize..7) {
        let t = TruthTable::from_word(n.min(6), word);
        for v in 0..t.nvars() {
            let hi = t.cofactor1(v);
            let lo = t.cofactor0(v);
            let var = TruthTable::var(t.nvars(), v);
            let rebuilt = var.and(&hi).or(&var.not().and(&lo));
            prop_assert_eq!(&rebuilt, &t);
        }
    }

    /// flip_var is an involution and commutes with complement.
    #[test]
    fn flip_var_involution(word in any::<u64>(), v in 0usize..6) {
        let t = TruthTable::from_word(6, word);
        prop_assert_eq!(t.flip_var(v).flip_var(v), t.clone());
        prop_assert_eq!(t.flip_var(v).not(), t.not().flip_var(v));
    }
}
