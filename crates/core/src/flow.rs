//! The offline **generic stage** (§IV.A): synthesis → signal
//! parameterization (done beforehand by [`crate::param`]) → TCON
//! technology mapping → TPaR place & route → generalized bitstream.
//!
//! Run once per design. Its product — a [`pfdbg_pconf::Scg`] over a
//! generalized bitstream whose instrumentation bits are Boolean
//! functions of the select parameters — is what makes every subsequent
//! debugging turn a microsecond-scale specialization instead of an
//! hours-scale recompilation.

use crate::param::Instrumented;
use pfdbg_arch::{BitstreamLayout, IcapModel, RRNode, VIRTEX5_CONFIG_BITS, VIRTEX5_FRAME_BITS};
use pfdbg_emu::{FaultyIcap, IcapFaultConfig, SeuConfig, SeuIcap};
use pfdbg_map::{map_parameterized_network_with, ElemKind};
use pfdbg_netlist::truth::TruthTable;
use pfdbg_netlist::{Network, NodeId};
use pfdbg_obs::LazyHistogram;
use pfdbg_pconf::{
    Bdd, BddManager, CommitPolicy, GeneralizedBuilder, IcapChannel, MemoryIcap,
    OnlineReconfigurator, Scg,
};
use pfdbg_pr::{tpar, TparConfig, TparResult};
use pfdbg_util::{par, FxHashMap};
use std::time::Duration;

// Always-on compile telemetry: wall time per offline run, so a fleet
// serving many designs sees compile latency without enabling profiling.
static OFFLINE_US: LazyHistogram = LazyHistogram::new("flow.offline_us");

/// TLUT tasks per BDD-construction shard. Fixed — independent of the
/// thread count — so the shard-local managers and the shard-order merge
/// produce an identical merged node table at every thread count.
const TLUT_SHARD: usize = 8;

/// Routed nets per switch-bit BDD shard (same fixed-shard rule).
const NET_SHARD: usize = 16;

/// A shard-local BDD node table as exported by
/// [`BddManager::export_nodes`]: `(var, lo, hi)` triples, terminals
/// omitted.
type ShardNodes = Vec<(u32, u32, u32)>;

/// One switch-bit shard's product: the exported node table plus
/// `(edge id, shard-local function index)` pairs in first-touch order.
type SwitchShard = Result<(ShardNodes, Vec<(u32, u32)>), String>;

/// Offline-stage settings.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// LUT input count.
    pub k: usize,
    /// Place & route settings.
    pub tpar: TparConfig,
    /// Configuration frame size in bits.
    pub frame_bits: usize,
    /// Run place & route and build the generalized bitstream (skippable
    /// for area-only experiments on large designs).
    pub run_pr: bool,
    /// Worker threads for the parallel stages (mapping, routing,
    /// generalized-bitstream construction); 0 = global
    /// [`pfdbg_util::par::threads`] policy. The offline products are
    /// identical at every thread count.
    pub threads: usize,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            k: 6,
            tpar: TparConfig::default(),
            frame_bits: VIRTEX5_FRAME_BITS,
            run_pr: true,
            threads: 0,
        }
    }
}

/// Mapping-level statistics of the generic stage.
#[derive(Debug, Clone, Copy)]
pub struct MapStats {
    /// Plain LUTs.
    pub luts: usize,
    /// Tunable LUTs.
    pub tluts: usize,
    /// Tunable connections.
    pub tcons: usize,
    /// Logic depth in LUT levels.
    pub depth: u32,
}

/// Everything the offline stage produces.
pub struct OfflineResult {
    /// The mapped (generalized) network with element kinds.
    pub mapped: Network,
    /// Element kind per mapped node.
    pub kinds: FxHashMap<NodeId, ElemKind>,
    /// Mapping statistics.
    pub map_stats: MapStats,
    /// Place & route result (when `run_pr`).
    pub tpar: Option<TparResult>,
    /// The SCG over the generalized bitstream (when `run_pr`).
    pub scg: Option<Scg>,
    /// The bitstream layout (when `run_pr`).
    pub layout: Option<BitstreamLayout>,
    /// Reconfiguration-port model calibrated to this device (full
    /// reconfiguration = the paper's 176 ms).
    pub icap: IcapModel,
}

impl OfflineResult {
    /// Consume the offline products into an [`OnlineReconfigurator`]
    /// over a reliable in-memory channel. `None` when the stage ran
    /// with `run_pr = false` (no SCG or layout to go online with).
    pub fn into_online(self) -> Option<OnlineReconfigurator> {
        self.into_online_chaos(None, CommitPolicy::default())
    }

    /// Like [`OfflineResult::into_online`], but the reconfiguration
    /// transport injects faults per `fault` (None = reliable) and the
    /// commit engine retries per `policy` — the chaos entry point the
    /// `--icap-fault-rate` knobs feed.
    pub fn into_online_chaos(
        self,
        fault: Option<IcapFaultConfig>,
        policy: CommitPolicy,
    ) -> Option<OnlineReconfigurator> {
        self.into_online_with(fault, policy, None)
    }

    /// The full chaos entry point: transport faults on the write path
    /// (`fault`) *and* single-event upsets striking configuration
    /// memory between turns (`seu`). SEUs wrap the reliable device
    /// model directly and transport faults wrap outside, so upset
    /// injection always lands while repair writes still suffer — the
    /// two injectors stay independent and separately seeded.
    pub fn into_online_with(
        self,
        fault: Option<IcapFaultConfig>,
        policy: CommitPolicy,
        seu: Option<SeuConfig>,
    ) -> Option<OnlineReconfigurator> {
        let scg = self.scg?;
        let layout = self.layout?;
        let mem = MemoryIcap::new(scg.generalized().base.clone(), layout.frame_bits);
        let channel: Box<dyn IcapChannel> = match (seu, fault) {
            (Some(s), Some(f)) => Box::new(FaultyIcap::new(SeuIcap::new(mem, s), f)),
            (Some(s), None) => Box::new(SeuIcap::new(mem, s)),
            (None, Some(f)) => Box::new(FaultyIcap::new(mem, f)),
            (None, None) => Box::new(mem),
        };
        Some(OnlineReconfigurator::with_channel(scg, layout, self.icap, channel, policy))
    }
}

/// Run the offline generic stage on an instrumented design (built over
/// the initial mapped netlist — see
/// [`crate::baseline::prepare_instrumented`]).
pub fn offline(inst: &Instrumented, cfg: &OfflineConfig) -> Result<OfflineResult, String> {
    let _offline_span = pfdbg_obs::span("offline");
    let offline_t0 = std::time::Instant::now();
    let result = offline_inner(inst, cfg);
    OFFLINE_US.record_duration(offline_t0.elapsed());
    result
}

fn offline_inner(inst: &Instrumented, cfg: &OfflineConfig) -> Result<OfflineResult, String> {
    // TCON technology mapping: selectors to routing, the rest through
    // synthesis + parameter-aware cut mapping.
    let mp = {
        let _s = pfdbg_obs::span("offline.tconmap");
        map_parameterized_network_with(&inst.network, cfg.k, cfg.threads)?
    };
    let map_stats = MapStats {
        luts: mp.stats.luts,
        tluts: mp.stats.tluts,
        tcons: mp.stats.tcons,
        depth: mp.stats.depth,
    };
    record_map_stats(&map_stats);
    let (mapped, kinds) = (mp.network, mp.kinds);
    {
        let _s = pfdbg_obs::span("offline.validate");
        mapped.validate()?;
    }

    if !cfg.run_pr {
        return Ok(OfflineResult {
            mapped,
            kinds,
            map_stats,
            tpar: None,
            scg: None,
            layout: None,
            icap: IcapModel::virtex5(),
        });
    }

    // TPaR place & route (the router inherits the flow-level thread
    // count unless the caller pinned one explicitly).
    let mut tpar_cfg = cfg.tpar;
    if tpar_cfg.route.threads == 0 {
        tpar_cfg.route.threads = cfg.threads;
    }
    let result = tpar(&mapped, &kinds, &tpar_cfg)?;

    // Generalized bitstream.
    let layout = {
        let _s = pfdbg_obs::span("offline.layout");
        BitstreamLayout::new(&result.device, &result.rrg, cfg.frame_bits)
    };
    let mut manager = BddManager::new();
    let param_var = param_var_map(&mapped, &inst.annotations);
    let mut builder = GeneralizedBuilder::new(&layout, inst.annotations.len());

    {
        let _s = pfdbg_obs::span("offline.lut_bits");
        write_lut_bits(
            &mapped,
            &kinds,
            &param_var,
            &result,
            &layout,
            cfg.k,
            cfg.threads,
            &mut manager,
            &mut builder,
        )?;
    }
    {
        let _s = pfdbg_obs::span("offline.switch_bits");
        write_switch_bits(
            &mapped,
            &kinds,
            &param_var,
            &result,
            &layout,
            cfg.threads,
            &mut manager,
            &mut builder,
        )?;
    }

    let gbs = {
        let _s = pfdbg_obs::span("offline.build_gbs");
        builder.build()?
    };
    if pfdbg_obs::enabled() {
        pfdbg_obs::gauge_set("bdd.nodes", manager.n_nodes() as f64);
        pfdbg_obs::gauge_set("gbs.frames", layout.n_frames() as f64);
    }
    // Calibrate the port at *device* scale (a full Virtex-5 stream in
    // 176 ms), not at design scale: the design occupies a region of the
    // device, and partial reconfiguration pays per frame of the real
    // part.
    let icap = IcapModel::calibrated_to(VIRTEX5_CONFIG_BITS, Duration::from_millis(176));
    let mut scg = Scg::new(manager, gbs);
    scg.set_threads(cfg.threads);

    Ok(OfflineResult {
        mapped,
        kinds,
        map_stats,
        tpar: Some(result),
        scg: Some(scg),
        layout: Some(layout),
        icap,
    })
}

/// Fold the mapping summary into the observability registry.
fn record_map_stats(stats: &MapStats) {
    if !pfdbg_obs::enabled() {
        return;
    }
    pfdbg_obs::gauge_set("map.luts", stats.luts as f64);
    pfdbg_obs::gauge_set("map.tluts", stats.tluts as f64);
    pfdbg_obs::gauge_set("map.tcons", stats.tcons as f64);
    pfdbg_obs::gauge_set("map.depth", stats.depth as f64);
}

/// Map each parameter *node* in the mapped network to its BDD variable
/// (declaration order of the `.par` annotations).
fn param_var_map(
    mapped: &Network,
    ann: &pfdbg_netlist::ParamAnnotations,
) -> FxHashMap<NodeId, u32> {
    let index = ann.index_map();
    let mut out = FxHashMap::default();
    for (id, node) in mapped.nodes() {
        if node.is_param {
            if let Some(&v) = index.get(node.name.as_str()) {
                out.insert(id, v as u32);
            }
        }
    }
    out
}

/// The selection condition under which TCON tree node `node` forwards the
/// value of `source`: a Boolean function of the select parameters.
pub fn tcon_condition(
    nw: &Network,
    kinds: &FxHashMap<NodeId, ElemKind>,
    param_var: &FxHashMap<NodeId, u32>,
    manager: &mut BddManager,
    node: NodeId,
    source: NodeId,
) -> Bdd {
    let is_tcon = |id: NodeId| nw.node(id).is_table() && kinds.get(&id) == Some(&ElemKind::TCon);
    if !is_tcon(node) {
        return manager.constant(node == source);
    }
    let n = nw.node(node);
    let table = n.table().expect("TCON is a table");
    // Positions of parameter fanins and their BDD variables.
    let param_positions: Vec<(usize, u32)> = n
        .fanins
        .iter()
        .enumerate()
        .filter_map(|(i, f)| param_var.get(f).map(|&v| (i, v)))
        .collect();
    let n_p = param_positions.len();
    let mut cond = Bdd::FALSE;
    for a in 0..(1usize << n_p) {
        // Residual under this parameter assignment.
        let mut residual = table.clone();
        for (bit, &(pos, _)) in param_positions.iter().enumerate().rev() {
            residual = residual.restrict(pos, (a >> bit) & 1 == 1);
        }
        // Which real fanin does it select?
        let real_fanins: Vec<NodeId> = n
            .fanins
            .iter()
            .enumerate()
            .filter(|(i, _)| !param_positions.iter().any(|&(p, _)| p == *i))
            .map(|(_, &f)| f)
            .collect();
        let selected = (0..residual.nvars())
            .find(|&v| residual == TruthTable::var(residual.nvars(), v))
            .map(|v| real_fanins[v]);
        let Some(sel) = selected else { continue };
        // Recurse into the selected fanin.
        let sub = tcon_condition(nw, kinds, param_var, manager, sel, source);
        if sub == Bdd::FALSE {
            continue;
        }
        // Minterm of this assignment over the element's own parameters.
        let mut mt = Bdd::TRUE;
        for (bit, &(_, var)) in param_positions.iter().enumerate() {
            let lit = manager.var(var);
            let lit = if (a >> bit) & 1 == 1 { lit } else { manager.not(lit) };
            mt = manager.and(mt, lit);
        }
        let term = manager.and(mt, sub);
        cond = manager.or(cond, term);
    }
    cond
}

/// Build the per-row parameter functions of one tunable LUT: each
/// physical truth-table row (over the real fanins) is the OR of the
/// minterms of parameter assignments under which that row reads 1.
fn tlut_row_funcs(
    mapped: &Network,
    param_var: &FxHashMap<NodeId, u32>,
    lut: NodeId,
    manager: &mut BddManager,
) -> Vec<Bdd> {
    let node = mapped.node(lut);
    let table = node.table().expect("BLE LUT is a table");
    let param_positions: Vec<(usize, u32)> = node
        .fanins
        .iter()
        .enumerate()
        .filter_map(|(i, f)| param_var.get(f).map(|&v| (i, v)))
        .collect();
    let n_p = param_positions.len();
    let real_n = table.nvars() - n_p;
    let mut row_funcs: Vec<Bdd> = vec![Bdd::FALSE; 1 << real_n];
    for a in 0..(1usize << n_p) {
        let mut residual = table.clone();
        for (bit, &(pos, _)) in param_positions.iter().enumerate().rev() {
            residual = residual.restrict(pos, (a >> bit) & 1 == 1);
        }
        let mut mt = Bdd::TRUE;
        for (bit, &(_, var)) in param_positions.iter().enumerate() {
            let lit = manager.var(var);
            let lit = if (a >> bit) & 1 == 1 { lit } else { manager.not(lit) };
            mt = manager.and(mt, lit);
        }
        for (row, func) in row_funcs.iter_mut().enumerate() {
            if residual.bit(row) {
                *func = manager.or(*func, mt);
            }
        }
    }
    row_funcs
}

/// One tunable-LUT BDD-construction task: the placed BLE position and
/// the mapped LUT node whose rows become parameter functions.
struct TlutTask {
    x: usize,
    y: usize,
    ble: usize,
    lut: NodeId,
}

#[allow(clippy::too_many_arguments)]
fn write_lut_bits(
    mapped: &Network,
    kinds: &FxHashMap<NodeId, ElemKind>,
    param_var: &FxHashMap<NodeId, u32>,
    result: &TparResult,
    layout: &BitstreamLayout,
    k: usize,
    threads: usize,
    manager: &mut BddManager,
    builder: &mut GeneralizedBuilder,
) -> Result<(), String> {
    // Pass 1 (serial, cheap): constant bits, plus the list of tunable
    // LUTs whose row functions need BDD construction. Task order is the
    // cluster/BLE iteration order — deterministic.
    let mut tasks: Vec<TlutTask> = Vec::new();
    for (ci, cluster) in result.packed.clusters.iter().enumerate() {
        let block = result
            .packed
            .blocks
            .iter()
            .position(|b| matches!(b, pfdbg_pr::Block::Clb(c) if *c == ci))
            .ok_or("cluster without block")?;
        let loc = result.placement.locs[block];
        let (x, y) = (loc.x as usize, loc.y as usize);
        for (ble_idx, ble) in cluster.bles.iter().enumerate() {
            // FF bypass: 1 = registered output.
            builder.set_const(layout.ff_bypass_bit(x, y, ble_idx, k), ble.latch.is_some());
            let Some(lut) = ble.lut else { continue };
            let node = mapped.node(lut);
            let table = node.table().expect("BLE LUT is a table");
            match kinds.get(&lut) {
                Some(ElemKind::TLut) => {
                    // Parameter fanins fold into the configuration;
                    // deferred to the sharded BDD pass below.
                    tasks.push(TlutTask { x, y, ble: ble_idx, lut });
                }
                _ => {
                    // Plain LUT: constant truth bits (rows beyond the
                    // logical arity replicate, as the physical LUT ignores
                    // unused pins).
                    let phys = table.extend_to(k.max(table.nvars()));
                    for row in 0..(1usize << k.min(phys.nvars())) {
                        builder.set_const(layout.lut_bit(x, y, ble_idx, row, k), phys.bit(row));
                    }
                }
            }
        }
    }

    // Pass 2: build row functions in fixed-size shards, each in its own
    // `BddManager`, then merge shard node tables serially in shard order
    // (see [`BddManager::import_nodes`]). Fixed shards mean the merged
    // node table is identical at every thread count.
    let shard_results: Vec<(ShardNodes, Vec<Vec<u32>>)> =
        par::map_shards(threads, tasks.len(), TLUT_SHARD, |range| {
            let mut local = BddManager::new();
            let rows: Vec<Vec<u32>> = tasks[range]
                .iter()
                .map(|t| {
                    tlut_row_funcs(mapped, param_var, t.lut, &mut local)
                        .iter()
                        .map(|f| f.index())
                        .collect()
                })
                .collect();
            (local.export_nodes(), rows)
        });
    for ((nodes, per_task), range) in
        shard_results.iter().zip(par::shard_ranges(tasks.len(), TLUT_SHARD))
    {
        let trans = manager.import_nodes(nodes);
        for (t, rows) in tasks[range].iter().zip(per_task) {
            for (row, &fi) in rows.iter().enumerate() {
                builder.set_func(
                    manager,
                    layout.lut_bit(t.x, t.y, t.ble, row, k),
                    trans[fi as usize],
                );
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_switch_bits(
    mapped: &Network,
    kinds: &FxHashMap<NodeId, ElemKind>,
    param_var: &FxHashMap<NodeId, u32>,
    result: &TparResult,
    layout: &BitstreamLayout,
    threads: usize,
    manager: &mut BddManager,
    builder: &mut GeneralizedBuilder,
) -> Result<(), String> {
    // Edge lookup: (from, to) -> edge id.
    let edge_id = |from: RRNode, to: RRNode| -> Option<u32> {
        result.rrg.out_edges(from).find(|&(_, t)| t == to).map(|(e, _)| e)
    };

    // Accumulate per-edge functions (an edge can serve several
    // alternatives of one net, or — for constant nets — be simply on).
    // Nets are sharded with a fixed shard size; each shard builds its
    // `tcon_condition` BDDs in a local manager and reports its edges in
    // first-touch order, so the shard-order merge below is identical at
    // every thread count.
    let routes = &result.routed.routes;
    let shard_results: Vec<SwitchShard> =
        par::map_shards(threads, routes.len(), NET_SHARD, |range| {
            let mut local = BddManager::new();
            let mut order: Vec<u32> = Vec::new();
            let mut acc: FxHashMap<u32, Bdd> = FxHashMap::default();
            for nr in &routes[range] {
                let net = &result.packed.nets[nr.net];
                for branch in &nr.branches {
                    let cond = if net.tunable {
                        let source = net.source_nodes[branch.alternative];
                        tcon_condition(mapped, kinds, param_var, &mut local, net.driver, source)
                    } else {
                        Bdd::TRUE
                    };
                    for &(from, to) in &branch.edges {
                        let e = edge_id(from, to)
                            .ok_or_else(|| format!("routed edge {from:?}->{to:?} not in RRG"))?;
                        let entry = acc.entry(e).or_insert_with(|| {
                            order.push(e);
                            Bdd::FALSE
                        });
                        *entry = local.or(*entry, cond);
                    }
                }
            }
            let pairs = order.iter().map(|&e| (e, acc[&e].index())).collect();
            Ok((local.export_nodes(), pairs))
        });

    // Serial merge in shard order; cross-shard edge collisions OR in
    // shard order too. Final writes are sorted by edge id so builder
    // insertion order is canonical.
    let mut funcs: Vec<(u32, Bdd)> = Vec::new();
    let mut idx_of: FxHashMap<u32, usize> = FxHashMap::default();
    for shard in shard_results {
        let (nodes, pairs) = shard?;
        let trans = manager.import_nodes(&nodes);
        for (e, fi) in pairs {
            let f = trans[fi as usize];
            match idx_of.entry(e) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let i = *slot.get();
                    funcs[i].1 = manager.or(funcs[i].1, f);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(funcs.len());
                    funcs.push((e, f));
                }
            }
        }
    }
    funcs.sort_unstable_by_key(|&(e, _)| e);
    for (e, f) in funcs {
        builder.set_func(manager, layout.switch_bit(e), f);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::InstrumentConfig;
    use pfdbg_netlist::truth::gates;
    use pfdbg_util::BitVec;

    fn small_design() -> Network {
        // Large enough that the initial mapping keeps several LUTs (a
        // single-output cone would collapse into one LUT, leaving nothing
        // to multiplex).
        pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
            n_inputs: 8,
            n_outputs: 6,
            n_gates: 40,
            depth: 5,
            n_latches: 2,
            seed: 33,
        })
    }

    #[test]
    fn offline_produces_tcons_and_small_lut_area() {
        let design = small_design();
        let (initial, _, inst) = crate::baseline::prepare_instrumented(
            &design,
            &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
            6,
        )
        .unwrap();
        let off = offline(&inst, &OfflineConfig { run_pr: false, ..Default::default() }).unwrap();
        assert!(off.map_stats.tcons > 0, "mux trees must become TCONs: {:?}", off.map_stats);
        // The instrumented LUT area stays close to the initial mapping.
        assert!(
            off.map_stats.luts + off.map_stats.tluts <= initial.n_tables() + 2,
            "instrumentation leaked into LUTs: {:?} vs {}",
            off.map_stats,
            initial.n_tables()
        );
    }

    #[test]
    fn offline_with_pr_builds_generalized_bitstream() {
        let design = small_design();
        let (_, _, inst) = crate::baseline::prepare_instrumented(
            &design,
            &InstrumentConfig { n_ports: 1, max_signals: None, coverage: 1 },
            6,
        )
        .unwrap();
        let off = offline(&inst, &OfflineConfig::default()).unwrap();
        let scg = off.scg.as_ref().expect("scg built");
        assert!(scg.generalized().n_tunable() > 0, "no parameterized bits");
        // Specialize for two different selections; bitstreams must differ
        // (different signals route to the trace port).
        let n = inst.annotations.len();
        let mut p0 = BitVec::zeros(n);
        let p1 = {
            let mut v = BitVec::zeros(n);
            v.set(0, true);
            v
        };
        let b0 = scg.specialize(&p0);
        let _ = &mut p0;
        let b1 = scg.specialize(&p1);
        assert_ne!(b0, b1, "different selections must differ in routing bits");
        let _ = &mut p0;
    }

    #[test]
    fn parallel_offline_is_bit_identical_to_serial() {
        // The whole offline flow — mapping, routing, sharded BDD
        // construction — must produce identical products at every
        // thread count: same tunable-bit count, same merged BDD node
        // table size, and byte-identical specialized bitstreams.
        let design = small_design();
        let (_, _, inst) = crate::baseline::prepare_instrumented(
            &design,
            &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
            6,
        )
        .unwrap();
        let run = |threads: usize| {
            offline(&inst, &OfflineConfig { threads, ..Default::default() }).unwrap()
        };
        let base = run(1);
        let base_scg = base.scg.as_ref().unwrap();
        let n = inst.annotations.len();
        let params: Vec<BitVec> = (0..4)
            .map(|i| {
                let mut v = BitVec::zeros(n);
                if i > 0 {
                    v.set((i - 1) % n.max(1), true);
                }
                v
            })
            .collect();
        for threads in [2, 8] {
            let off = run(threads);
            let scg = off.scg.as_ref().unwrap();
            assert_eq!(
                scg.generalized().n_tunable(),
                base_scg.generalized().n_tunable(),
                "tunable count differs at {threads} threads"
            );
            assert_eq!(
                scg.manager().n_nodes(),
                base_scg.manager().n_nodes(),
                "BDD node count differs at {threads} threads"
            );
            for p in &params {
                assert_eq!(
                    scg.specialize(p),
                    base_scg.specialize(p),
                    "bitstream differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tcon_condition_matches_mux_semantics() {
        // Build a 2:1 parameterized mux directly in a mapped-style
        // network and check both selection conditions.
        let mut nw = Network::new("m");
        let d0 = nw.add_input("d0");
        let d1 = nw.add_input("d1");
        let s = nw.add_input("s");
        nw.set_param(s, true);
        let m = nw.add_table("m", vec![d0, d1, s], gates::mux21());
        nw.add_output("y", m);
        let mut kinds = FxHashMap::default();
        kinds.insert(m, ElemKind::TCon);
        let mut param_var = FxHashMap::default();
        param_var.insert(s, 0u32);
        let mut mgr = BddManager::new();
        let c0 = tcon_condition(&nw, &kinds, &param_var, &mut mgr, m, d0);
        let c1 = tcon_condition(&nw, &kinds, &param_var, &mut mgr, m, d1);
        let zero: BitVec = [false].into_iter().collect();
        let one: BitVec = [true].into_iter().collect();
        assert!(mgr.eval(c0, &zero) && !mgr.eval(c0, &one));
        assert!(!mgr.eval(c1, &zero) && mgr.eval(c1, &one));
        // Conditions are mutually exclusive and exhaustive.
        let both = mgr.and(c0, c1);
        assert_eq!(both, Bdd::FALSE);
        let either = mgr.or(c0, c1);
        assert_eq!(either, Bdd::TRUE);
    }

    #[test]
    fn tcon_condition_composes_through_trees() {
        // 4:1 tree: m2 selects between m0 (d0/d1 by s0) and m1 (d2/d3 by
        // s0) using s1.
        let mut nw = Network::new("t");
        let d: Vec<NodeId> = (0..4).map(|i| nw.add_input(format!("d{i}"))).collect();
        let s0 = nw.add_input("s0");
        let s1 = nw.add_input("s1");
        nw.set_param(s0, true);
        nw.set_param(s1, true);
        let m0 = nw.add_table("m0", vec![d[0], d[1], s0], gates::mux21());
        let m1 = nw.add_table("m1", vec![d[2], d[3], s0], gates::mux21());
        let m2 = nw.add_table("m2", vec![m0, m1, s1], gates::mux21());
        nw.add_output("y", m2);
        let mut kinds = FxHashMap::default();
        for m in [m0, m1, m2] {
            kinds.insert(m, ElemKind::TCon);
        }
        let mut param_var = FxHashMap::default();
        param_var.insert(s0, 0u32);
        param_var.insert(s1, 1u32);
        let mut mgr = BddManager::new();
        for (i, &di) in d.iter().enumerate() {
            let c = tcon_condition(&nw, &kinds, &param_var, &mut mgr, m2, di);
            for v in 0..4usize {
                let asg: BitVec = [(v & 1) == 1, (v & 2) == 2].into_iter().collect();
                assert_eq!(mgr.eval(c, &asg), v == i, "source d{i}, select {v}");
            }
        }
    }
}
