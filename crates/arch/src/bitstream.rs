//! Configuration-memory model: the bitstream layout and concrete
//! bitstreams.
//!
//! SRAM FPGAs are configured by a bitstream organized in *frames*, the
//! smallest addressable units of configuration memory (on Virtex-5, a
//! frame is 41 32-bit words and spans a column of tiles — partial
//! reconfiguration rewrites whole frames). We model the same structure:
//! every configuration bit of the device — LUT truth-table bits, BLE
//! flip-flop bypass bits, local crossbar bits and one bit per routing
//! switch (RRG edge) — has a fixed address, and addresses are grouped
//! into per-column frames. The PConf machinery (crate `pfdbg-pconf`)
//! overlays Boolean functions on these addresses; the DPR model diffing
//! two bitstreams reports *frames* changed, which drives reconfiguration
//! time.

use crate::device::Device;
use crate::rrg::{RRGraph, RRNode};
use pfdbg_util::BitVec;

/// A flat configuration-bit address.
pub type BitAddr = usize;

/// The static layout: how many bits, how they group into frames, and the
/// address calculators.
#[derive(Debug, Clone)]
pub struct BitstreamLayout {
    /// Total configuration bits.
    pub n_bits: usize,
    /// Bits per frame.
    pub frame_bits: usize,
    /// Frame index of each bit (same length as `n_bits` conceptually, but
    /// computed arithmetically — bits are laid out column-major so one
    /// frame never spans columns).
    n_frames: usize,
    /// Per-column base address of CLB bits.
    clb_col_base: Vec<BitAddr>,
    clb_bits_per_tile: usize,
    clb_rows: usize,
    /// Base address of the routing-switch region.
    switch_base: BitAddr,
    /// Column stride for switch bits (edges are binned by source-node x).
    switch_col_base: Vec<BitAddr>,
    /// Edge -> address (computed once; edges are irregular).
    edge_addr: Vec<BitAddr>,
}

impl BitstreamLayout {
    /// Build the layout for a device and its routing graph.
    ///
    /// `frame_bits` mimics a frame spanning one grid column of one
    /// resource type; the Virtex-5 frame of 41×32 = 1312 bits is the
    /// default granularity used by [`crate::icap::IcapModel`].
    pub fn new(dev: &Device, rrg: &RRGraph, frame_bits: usize) -> Self {
        assert!(frame_bits > 0);
        let clb_bits = dev.spec.clb_config_bits();
        let clb_rows = dev.height - 2;
        let mut addr: BitAddr = 0;
        // CLB columns x = 1..width-1.
        let mut clb_col_base = Vec::with_capacity(dev.width.saturating_sub(2));
        for _x in 1..dev.width - 1 {
            clb_col_base.push(addr);
            addr += clb_bits * clb_rows;
        }
        let switch_base = addr;

        // Routing switches: group edges by the x coordinate of their
        // source node so frames stay columnar.
        let mut edges_by_col: Vec<Vec<u32>> = vec![Vec::new(); dev.width];
        for node in 0..rrg.n_nodes() {
            let id = RRNode(node as u32);
            let x = rrg.node(id).x as usize;
            for (e, _) in rrg.out_edges(id) {
                edges_by_col[x].push(e);
            }
        }
        let mut edge_addr = vec![0usize; rrg.n_edges()];
        let mut switch_col_base = Vec::with_capacity(dev.width);
        for col in &edges_by_col {
            switch_col_base.push(addr);
            for &e in col {
                edge_addr[e as usize] = addr;
                addr += 1;
            }
        }

        let n_bits = addr;
        let n_frames = n_bits.div_ceil(frame_bits);
        BitstreamLayout {
            n_bits,
            frame_bits,
            n_frames,
            clb_col_base,
            clb_bits_per_tile: clb_bits,
            clb_rows,
            switch_base,
            switch_col_base,
            edge_addr,
        }
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Frame index of an address.
    pub fn frame_of(&self, addr: BitAddr) -> usize {
        addr / self.frame_bits
    }

    /// Base address of the configuration bits of the CLB at grid `(x, y)`
    /// (must be a CLB tile: `1 <= x < width-1`, `1 <= y < height-1`).
    pub fn clb_base(&self, x: usize, y: usize) -> BitAddr {
        let col = x.checked_sub(1).expect("x is a CLB column");
        assert!(col < self.clb_col_base.len(), "x={x} not a CLB column");
        let row = y.checked_sub(1).expect("y is a CLB row");
        assert!(row < self.clb_rows, "y={y} not a CLB row");
        self.clb_col_base[col] + row * self.clb_bits_per_tile
    }

    /// Address of truth-table bit `bit` of BLE `ble` in the CLB at `(x, y)`.
    pub fn lut_bit(&self, x: usize, y: usize, ble: usize, bit: usize, k: usize) -> BitAddr {
        let per_ble = (1usize << k) + 1;
        self.clb_base(x, y) + ble * per_ble + bit
    }

    /// Address of the FF-bypass bit of BLE `ble`.
    pub fn ff_bypass_bit(&self, x: usize, y: usize, ble: usize, k: usize) -> BitAddr {
        let per_ble = (1usize << k) + 1;
        self.clb_base(x, y) + ble * per_ble + (1 << k)
    }

    /// Address of the configuration bit of routing switch (RRG edge) `e`.
    pub fn switch_bit(&self, e: u32) -> BitAddr {
        self.edge_addr[e as usize]
    }

    /// First address of the routing-switch region.
    pub fn switch_region_base(&self) -> BitAddr {
        self.switch_base
    }

    /// Base address of the switch bits whose source nodes live in grid
    /// column `x` (useful for columnar DPR reporting).
    pub fn switch_col_base(&self, x: usize) -> BitAddr {
        self.switch_col_base[x]
    }

    /// A zeroed bitstream of the right size.
    pub fn empty_bitstream(&self) -> Bitstream {
        Bitstream { bits: BitVec::zeros(self.n_bits) }
    }

    /// Decompose into plain serializable fields (see [`LayoutRaw`]).
    pub fn to_raw(&self) -> LayoutRaw {
        LayoutRaw {
            n_bits: self.n_bits,
            frame_bits: self.frame_bits,
            clb_col_base: self.clb_col_base.clone(),
            clb_bits_per_tile: self.clb_bits_per_tile,
            clb_rows: self.clb_rows,
            switch_base: self.switch_base,
            switch_col_base: self.switch_col_base.clone(),
            edge_addr: self.edge_addr.clone(),
        }
    }

    /// Rebuild a layout from [`BitstreamLayout::to_raw`] output.
    pub fn from_raw(raw: LayoutRaw) -> Result<Self, String> {
        if raw.frame_bits == 0 {
            return Err("layout with zero frame_bits".into());
        }
        if let Some(&a) = raw.edge_addr.iter().find(|&&a| a >= raw.n_bits) {
            return Err(format!("edge address {a} beyond the {}-bit layout", raw.n_bits));
        }
        Ok(BitstreamLayout {
            n_bits: raw.n_bits,
            frame_bits: raw.frame_bits,
            n_frames: raw.n_bits.div_ceil(raw.frame_bits),
            clb_col_base: raw.clb_col_base,
            clb_bits_per_tile: raw.clb_bits_per_tile,
            clb_rows: raw.clb_rows,
            switch_base: raw.switch_base,
            switch_col_base: raw.switch_col_base,
            edge_addr: raw.edge_addr,
        })
    }
}

/// The plain-data image of a [`BitstreamLayout`] — every field public,
/// nothing derived, so an external serializer (the artifact store) can
/// persist a layout without re-running device construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutRaw {
    /// Total configuration bits.
    pub n_bits: usize,
    /// Bits per frame.
    pub frame_bits: usize,
    /// Per-column base address of CLB bits.
    pub clb_col_base: Vec<BitAddr>,
    /// Configuration bits per CLB tile.
    pub clb_bits_per_tile: usize,
    /// Number of CLB rows.
    pub clb_rows: usize,
    /// First address of the routing-switch region.
    pub switch_base: BitAddr,
    /// Per-column base address of switch bits.
    pub switch_col_base: Vec<BitAddr>,
    /// Routing-switch address per RRG edge.
    pub edge_addr: Vec<BitAddr>,
}

/// A concrete configuration bitstream.
#[derive(Debug, PartialEq, Eq)]
pub struct Bitstream {
    bits: BitVec,
}

impl Clone for Bitstream {
    fn clone(&self) -> Self {
        Bitstream { bits: self.bits.clone() }
    }

    /// Reuses the existing bit buffer (no allocation for equal sizes) —
    /// the online turn path stages candidate bitstreams this way.
    fn clone_from(&mut self, other: &Self) {
        self.bits.clone_from(&other.bits);
    }
}

impl Bitstream {
    /// Wrap raw bits as a bitstream (file I/O, tests).
    pub fn from_bits(bits: BitVec) -> Self {
        Bitstream { bits }
    }

    /// The backing words (LSB-first), for serialization.
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Read one configuration bit.
    pub fn get(&self, addr: BitAddr) -> bool {
        self.bits.get(addr)
    }

    /// Write one configuration bit.
    pub fn set(&mut self, addr: BitAddr, value: bool) {
        self.bits.set(addr, value);
    }

    /// Total size in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the bitstream has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of set bits (enabled switches + LUT ones).
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// The set of *frames* on which `self` and `other` differ — the unit
    /// of dynamic partial reconfiguration.
    pub fn diff_frames(&self, other: &Bitstream, layout: &BitstreamLayout) -> Vec<usize> {
        assert_eq!(self.len(), other.len(), "bitstream size mismatch");
        let mut frames = Vec::new();
        let mut current: Option<usize> = None;
        // Word-level scan for speed; refine per bit only on differing words.
        let a = self.bits.words();
        let b = other.bits.words();
        for (wi, (&wa, &wb)) in a.iter().zip(b).enumerate() {
            let mut diff = wa ^ wb;
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let addr = wi * 64 + bit;
                let f = layout.frame_of(addr);
                if current != Some(f) {
                    if !frames.contains(&f) {
                        frames.push(f);
                    }
                    current = Some(f);
                }
            }
        }
        frames.sort_unstable();
        frames.dedup();
        frames
    }

    /// Hamming distance to another bitstream.
    pub fn distance(&self, other: &Bitstream) -> usize {
        self.bits.hamming_distance(&other.bits)
    }

    /// Copy the `len`-bit field at `base` into `out` as LSB-first words
    /// (word-level frame extraction; see [`BitVec::extract_words`]).
    pub fn extract_words(&self, base: BitAddr, len: usize, out: &mut Vec<u64>) {
        self.bits.extract_words(base, len, out);
    }

    /// Overwrite the `len`-bit field at `base` from LSB-first words;
    /// bits beyond the bitstream length are dropped (tail frame).
    pub fn splice_words(&mut self, base: BitAddr, len: usize, src: &[u64]) {
        self.bits.splice_words(base, len, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ArchSpec;
    use crate::rrg::build_rrg;

    fn setup() -> (Device, RRGraph, BitstreamLayout) {
        let dev = Device::new(ArchSpec { channel_width: 8, ..Default::default() }, 3, 3);
        let rrg = build_rrg(&dev);
        let layout = BitstreamLayout::new(&dev, &rrg, 1312);
        (dev, rrg, layout)
    }

    #[test]
    fn addresses_are_unique_and_in_range() {
        let (dev, rrg, layout) = setup();
        let mut seen = std::collections::HashSet::new();
        for (x, y) in dev.clb_tiles() {
            for ble in 0..dev.spec.n_ble {
                for bit in 0..(1 << dev.spec.k) {
                    let a = layout.lut_bit(x, y, ble, bit, dev.spec.k);
                    assert!(a < layout.n_bits);
                    assert!(seen.insert(a), "duplicate address {a}");
                }
                let f = layout.ff_bypass_bit(x, y, ble, dev.spec.k);
                assert!(seen.insert(f), "duplicate ff bit {f}");
            }
        }
        for e in 0..rrg.n_edges() as u32 {
            let a = layout.switch_bit(e);
            assert!(a >= layout.switch_region_base());
            assert!(a < layout.n_bits);
            assert!(seen.insert(a), "switch bit collides {a}");
        }
    }

    #[test]
    fn frame_count_consistent() {
        let (_, _, layout) = setup();
        assert_eq!(layout.n_frames(), layout.n_bits.div_ceil(layout.frame_bits));
        assert_eq!(layout.frame_of(0), 0);
        assert_eq!(layout.frame_of(layout.frame_bits), 1);
    }

    #[test]
    fn bitstream_set_get_roundtrip() {
        let (_, _, layout) = setup();
        let mut bs = layout.empty_bitstream();
        assert_eq!(bs.count_ones(), 0);
        bs.set(7, true);
        bs.set(layout.n_bits - 1, true);
        assert!(bs.get(7));
        assert!(bs.get(layout.n_bits - 1));
        assert_eq!(bs.count_ones(), 2);
    }

    #[test]
    fn diff_frames_reports_touched_frames_only() {
        let (_, _, layout) = setup();
        let a = layout.empty_bitstream();
        let mut b = a.clone();
        // Flip two bits in the same frame, one in another.
        b.set(1, true);
        b.set(2, true);
        b.set(3 * layout.frame_bits + 5, true);
        let frames = b.diff_frames(&a, &layout);
        assert_eq!(frames, vec![0, 3]);
        assert_eq!(b.distance(&a), 3);
        assert_eq!(a.diff_frames(&a.clone(), &layout), Vec::<usize>::new());
    }

    #[test]
    fn clb_base_rejects_non_clb_tiles() {
        let (_, _, layout) = setup();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| layout.clb_base(0, 1)));
        assert!(r.is_err(), "x=0 is the I/O ring, not a CLB column");
    }
}
