//! Scrubbing tests for the debug service: a long SEU-bombarded session
//! must end with zero undetected divergence (every frame the scrubber
//! reports clean is bit-identical to the PConf-evaluated golden
//! frames), repairs must invalidate stale LRU entries, stuck frames
//! must quarantine and degrade the health verdict, and the `health` /
//! `scrub` protocol verbs must surface it all over TCP.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_emu::{IcapFaultConfig, SeuConfig};
use pfdbg_pconf::{CommitPolicy, ScrubPolicy};
use pfdbg_serve::server::{Server, ServerConfig, ServerHandle};
use pfdbg_serve::session::{Engine, SessionManager};
use pfdbg_util::BitVec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn build_engine(threads: usize) -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 8,
        n_outputs: 6,
        n_gates: 40,
        depth: 5,
        n_latches: 2,
        seed: 33,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        6,
    )
    .unwrap();
    let off = pfdbg_core::offline(&inst, &OfflineConfig::default()).unwrap();
    let mut scg = off.scg.unwrap();
    scg.set_threads(threads);
    Engine::new(inst, scg, off.layout.unwrap(), off.icap)
}

fn seu_manager(engine: Arc<Engine>, seu: SeuConfig) -> SessionManager {
    SessionManager::with_chaos_scrub(
        engine,
        16,
        None,
        CommitPolicy::default(),
        Some(seu),
        ScrubPolicy::default(),
    )
}

/// One full bombardment run: `turns` selects over a toggling parameter
/// schedule with a scrub every 5 turns plus a final one. Returns the
/// complete deterministic outcome log (turns + scrub reports) and the
/// final device readback, and asserts the acceptance invariant: zero
/// undetected divergence against the golden oracle.
fn run_bombarded_session(
    threads: usize,
    seu: SeuConfig,
    turns: usize,
) -> (Vec<String>, pfdbg_arch::Bitstream) {
    let engine = Arc::new(build_engine(threads));
    let n = engine.n_params();
    let manager = seu_manager(engine.clone(), seu);
    manager.open("acc").unwrap();
    let mut log = Vec::new();
    let mut params = BitVec::zeros(n);
    for t in 0..turns {
        let bit = t % n.max(1);
        params.set(bit, !params.get(bit));
        let o = manager.select("acc", &params).unwrap();
        log.push(format!(
            "turn {}:{}:{}:{}:{}:{}",
            o.turn, o.bits_changed, o.frames_changed, o.cache_hit, o.retries, o.degradations
        ));
        if (t + 1) % 5 == 0 {
            let r = manager.scrub_session("acc").unwrap();
            log.push(format!(
                "scrub {}:{}:{}:{}:{}",
                r.frames_checked, r.upset_frames, r.upset_bits, r.repaired_frames, r.failed_frames
            ));
        }
    }
    let last = manager.scrub_session("acc").unwrap();
    log.push(format!("final {}:{}", last.upset_frames, last.repaired_frames));
    assert_eq!(last.failed_frames, 0, "SEU-only repairs write to a reliable port");

    // The acceptance invariant: after the final scrub (and with no tick
    // since), configuration memory is bit-identical to the golden
    // specialization of the session's current parameter vector. No
    // injected upset survives undetected.
    let (p, served, resync) = manager.session_state("acc").unwrap();
    assert_eq!(served, turns);
    assert!(!resync, "SEU-only sessions never quarantine, so never arm resync");
    let golden = engine.scg.specialize(&p);
    let readback = manager.readback("acc").unwrap();
    assert_eq!(readback, golden, "threads={threads}: undetected divergence after final scrub");

    let h = manager.health("acc").unwrap();
    assert_eq!(h.verdict.as_str(), "clean");
    assert!(h.quarantine.is_empty());
    assert!(h.upsets_detected > 0, "a 0.02 rate over {turns} turns must upset something");
    assert_eq!(h.upsets_detected, h.frames_repaired, "every detected upset was repaired");
    (log, readback)
}

/// The ISSUE acceptance criterion: 200 turns under `PFDBG_SEU_RATE=0.02`
/// (or the built-in 0.02 default) end with zero undetected divergence,
/// and the entire run — upset pattern, repairs, turn outcomes, final
/// configuration memory — is bit-identical at 1, 2, and 8 evaluation
/// threads.
#[test]
fn bombarded_session_ends_clean_and_deterministic_across_thread_counts() {
    let seu =
        SeuConfig::from_env().unwrap_or(SeuConfig { rate: 0.02, burst: 2, seed: 0xACCE_55ED });
    let baseline = run_bombarded_session(1, seu, 200);
    for threads in [2, 8] {
        let run = run_bombarded_session(threads, seu, 200);
        assert_eq!(run, baseline, "outcome diverged at {threads} threads");
    }
}

/// Satellite: a scrub repair rewrites device frames behind the cached
/// specialization's back, so it must drop the LRU entry for that
/// parameter vector — the next select re-verifies through a fresh
/// specialization instead of trusting the cache.
#[test]
fn scrub_repair_invalidates_the_cached_specialization() {
    let engine = Arc::new(build_engine(0));
    let n = engine.n_params();
    let manager = seu_manager(engine, SeuConfig { rate: 1.0, burst: 1, seed: 7 });
    manager.open("inv").unwrap();
    let mut params = BitVec::zeros(n);
    params.set(0, true);

    let first = manager.select("inv", &params).unwrap();
    assert!(!first.cache_hit, "fresh vector must miss");
    // Reselecting the identical vector proves the entry is live.
    let second = manager.select("inv", &params).unwrap();
    assert!(second.cache_hit, "repeat vector must hit the LRU");

    // Rate-1.0 SEUs guarantee the scrub finds and repairs upsets.
    let report = manager.scrub_session("inv").unwrap();
    assert!(report.repaired_frames > 0, "nothing repaired, nothing to invalidate");

    let third = manager.select("inv", &params).unwrap();
    assert!(!third.cache_hit, "post-repair select must re-verify, not trust the cache");
}

/// A frame that refuses to heal (every repair write rejected) is
/// quarantined after `max_repair_attempts` consecutive failed passes;
/// quarantining degrades the health verdict and arms `needs_resync`.
#[test]
fn stuck_frames_quarantine_and_degrade_health() {
    let engine = Arc::new(build_engine(0));
    let manager = SessionManager::with_chaos_scrub(
        engine,
        16,
        // Dead write path: SEU injection still lands (it strikes the
        // inner memory model directly) but every repair write fails.
        Some(IcapFaultConfig { write_error_rate: 1.0, seed: 3, ..IcapFaultConfig::default() }),
        CommitPolicy { max_retries: 0, ..CommitPolicy::default() },
        Some(SeuConfig { rate: 1.0, burst: 1, seed: 11 }),
        ScrubPolicy::default(),
    );
    manager.open("stuck").unwrap();
    let n = manager.engine().n_params();
    // Selecting the current (all-zeros) vector writes no frames, so it
    // commits trivially even over the dead port — but it ticks the
    // channel, so every frame takes an upset.
    let zeros = BitVec::zeros(n);
    manager.select("stuck", &zeros).unwrap();

    let attempts = ScrubPolicy::default().max_repair_attempts;
    for pass in 0..attempts {
        let r = manager.scrub_session("stuck").unwrap();
        assert!(r.upset_frames > 0, "pass {pass}: upsets persist while repairs fail");
        assert_eq!(r.repaired_frames, 0, "pass {pass}: the dead port cannot repair");
        if pass + 1 < attempts {
            assert_eq!(r.quarantined_frames, 0, "pass {pass}: streak not yet exhausted");
        } else {
            assert!(r.quarantined_frames > 0, "final pass must quarantine");
        }
    }
    let h = manager.health("stuck").unwrap();
    assert_eq!(h.verdict.as_str(), "degraded");
    assert!(!h.quarantine.is_empty());
    assert!(h.needs_resync, "quarantine must stop trusting configuration memory");
}

/// Combined chaos: transport faults on the write path and SEUs in the
/// fabric, together. Committed turns keep the PR-4 invariant for the
/// frames they write, rollbacks leave no trace, and once a scrub pass
/// completes with nothing failed, readback is bit-identical to the
/// golden oracle.
#[test]
fn combined_faults_and_seus_stay_recoverable() {
    let engine = Arc::new(build_engine(0));
    let n = engine.n_params();
    let manager = SessionManager::with_chaos_scrub(
        engine.clone(),
        16,
        Some(IcapFaultConfig::uniform(0.10, 0xBEEF)),
        CommitPolicy::default(),
        Some(SeuConfig { rate: 0.05, burst: 2, seed: 0xC0DE }),
        ScrubPolicy::default(),
    );
    manager.open("both").unwrap();
    let mut committed = 0usize;
    for turn in 0..30 {
        let mut params = BitVec::zeros(n);
        params.set(turn % n.max(1), true);
        let (before_params, before_turns, _) = manager.session_state("both").unwrap();
        match manager.select("both", &params) {
            Ok(_) => committed += 1,
            Err(msg) => {
                assert!(msg.contains("rolled back"), "unexpected failure: {msg}");
                let (after_params, after_turns, resync) = manager.session_state("both").unwrap();
                assert_eq!(after_params, before_params, "rollback moved session params");
                assert_eq!(after_turns, before_turns, "rollback advanced the turn counter");
                assert!(resync, "rollback must arm needs_resync");
            }
        }
        if turn % 5 == 4 {
            let _ = manager.scrub_session("both").unwrap();
        }
    }
    assert!(committed > 0, "no turn ever committed under combined chaos");

    // Scrub until one pass repairs everything it found (a 10% write
    // fault rate with retries makes this converge almost immediately),
    // then the full readback must match the golden oracle.
    let mut clean = false;
    for _ in 0..8 {
        let r = manager.scrub_session("both").unwrap();
        if r.failed_frames == 0 && r.quarantined_frames == 0 {
            clean = true;
            break;
        }
    }
    assert!(clean, "scrub never converged under 10% transport faults");
    let (p, _, _) = manager.session_state("both").unwrap();
    assert_eq!(
        manager.readback("both").unwrap(),
        engine.scg.specialize(&p),
        "converged scrub must leave the device bit-identical to golden"
    );
}

// ---------------------------------------------------------------- TCP --

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn roundtrip(&mut self, line: &str) -> pfdbg_obs::jsonl::Event {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let mut events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        assert_eq!(events.len(), 1, "one reply per request: {reply:?}");
        events.remove(0)
    }
}

fn assert_ok(ev: &pfdbg_obs::jsonl::Event) {
    assert_eq!(
        ev.fields.get("ok"),
        Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)),
        "expected ok reply, got {ev:?}"
    );
}

fn start_seu_server(seu: SeuConfig, scrub_interval_ms: f64) -> ServerHandle {
    let manager = seu_manager(Arc::new(build_engine(0)), seu);
    Server::start(
        manager,
        ServerConfig { workers: 2, scrub_interval_ms, ..ServerConfig::default() },
    )
    .unwrap()
}

/// The `scrub` and `health` verbs over the wire: an on-demand scrub
/// returns its report, health returns the verdict plus totals, the
/// quarantine set travels as a comma-joined string, and `stats` carries
/// the aggregate scrub counters.
#[test]
fn health_and_scrub_verbs_report_over_tcp() {
    let server = start_seu_server(SeuConfig { rate: 1.0, burst: 1, seed: 21 }, 0.0);
    let addr = server.local_addr();
    let mut c = Client::connect(addr);
    let open = c.roundtrip("{\"op\":\"open\",\"session\":\"h\"}");
    assert_ok(&open);
    let n = open.num("n_params").unwrap() as usize;
    let params: String = (0..n).map(|i| if i == 0 { '1' } else { '0' }).collect();
    assert_ok(
        &c.roundtrip(&format!("{{\"op\":\"select\",\"session\":\"h\",\"params\":\"{params}\"}}")),
    );

    let scrub = c.roundtrip("{\"op\":\"scrub\",\"session\":\"h\"}");
    assert_ok(&scrub);
    assert!(scrub.num("frames_checked").unwrap() > 0.0);
    assert!(scrub.num("upset_frames").unwrap() > 0.0, "rate-1.0 SEUs must be detected");
    assert_eq!(scrub.num("upset_frames"), scrub.num("repaired_frames"));
    assert_eq!(scrub.num("quarantined_frames"), Some(0.0));

    let health = c.roundtrip("{\"op\":\"health\",\"session\":\"h\"}");
    assert_ok(&health);
    assert_eq!(health.str("verdict"), Some("clean"));
    assert_eq!(health.str("quarantine"), Some(""));
    assert_eq!(health.fields.get("needs_resync"), Some(&pfdbg_obs::jsonl::JsonValue::Bool(false)));
    assert!(health.num("scrubs").unwrap() >= 1.0);
    assert_eq!(health.num("upsets_detected"), health.num("frames_repaired"));

    let stats = c.roundtrip("{\"op\":\"stats\"}");
    assert_ok(&stats);
    for field in [
        "scrub_passes",
        "scrub_upsets_detected",
        "scrub_repairs",
        "scrub_quarantined",
        "seu_bits_injected",
    ] {
        assert!(stats.num(field).is_some(), "{field} missing from stats: {stats:?}");
    }
    assert!(stats.num("scrub_passes").unwrap() >= 1.0);
    assert!(stats.num("seu_bits_injected").unwrap() > 0.0, "the select's tick injected upsets");

    // Unknown sessions are protocol errors, not panics.
    let missing = c.roundtrip("{\"op\":\"health\",\"session\":\"ghost\"}");
    assert_eq!(missing.fields.get("ok"), Some(&pfdbg_obs::jsonl::JsonValue::Bool(false)));
    server.shutdown();
}

/// The background scrubber thread: with a short interval it scrubs
/// idle sessions on its own — no client ever sends `scrub` — and its
/// passes show up in `health` and `stats`.
#[test]
fn background_scrubber_repairs_idle_sessions() {
    let server = start_seu_server(SeuConfig { rate: 1.0, burst: 1, seed: 31 }, 20.0);
    let addr = server.local_addr();
    let mut c = Client::connect(addr);
    let open = c.roundtrip("{\"op\":\"open\",\"session\":\"bg\"}");
    assert_ok(&open);
    let n = open.num("n_params").unwrap() as usize;
    let params: String = (0..n).map(|i| if i == 1 % n.max(1) { '1' } else { '0' }).collect();
    // One select ticks the channel, so every frame is now upset.
    assert_ok(
        &c.roundtrip(&format!("{{\"op\":\"select\",\"session\":\"bg\",\"params\":\"{params}\"}}")),
    );

    // Generous budget: the 20 ms interval only needs to fire once.
    let mut scrubs = 0.0;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        let health = c.roundtrip("{\"op\":\"health\",\"session\":\"bg\"}");
        assert_ok(&health);
        scrubs = health.num("scrubs").unwrap_or(0.0);
        if scrubs >= 1.0 {
            assert!(health.num("frames_repaired").unwrap() > 0.0, "{health:?}");
            break;
        }
    }
    assert!(scrubs >= 1.0, "background scrubber never ran within 2 s");
    server.shutdown();
}
