//! The FPGA emulator: cycle-accurate execution of a (possibly
//! instrumented) netlist with trace capture, triggering and runtime
//! fault injection.
//!
//! The emulator plays the role of the configured FPGA: it executes
//! whatever network it is given — typically a *specialized* design in
//! which the parameterized multiplexer network currently selects one
//! subset of signals for observation — and pushes one sample per clock
//! into the trace buffer.

use crate::fault::Fault;
use pfdbg_netlist::sim::Simulator;
use pfdbg_netlist::{Network, NodeId};
use pfdbg_trace::{TraceBuffer, TriggerUnit, Waveform};
use pfdbg_util::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A running emulation.
pub struct Emulator<'a> {
    nw: &'a Network,
    sim: Simulator<'a>,
    observed: Vec<NodeId>,
    buffer: TraceBuffer,
    trigger: Option<TriggerUnit>,
    runtime_faults: Vec<(NodeId, usize)>,
    /// Inputs held at a fixed value every cycle (PConf parameters during
    /// a debugging run).
    sticky: HashMap<NodeId, u64>,
    cycle: usize,
}

impl<'a> Emulator<'a> {
    /// Create an emulator observing the named signals into a trace buffer
    /// of `depth` samples. Unknown signal names are an error (the whole
    /// point of the paper is that *any* net can be selected — but it must
    /// exist).
    pub fn new(nw: &'a Network, observed: &[&str], depth: usize) -> Result<Self, String> {
        let observed: Vec<NodeId> = observed
            .iter()
            .map(|name| nw.find(name).ok_or_else(|| format!("no signal {name}")))
            .collect::<Result<_, _>>()?;
        let sim = Simulator::new(nw).map_err(|n| format!("combinational cycle at {n:?}"))?;
        let buffer = TraceBuffer::new(observed.len().max(1), depth);
        Ok(Emulator {
            nw,
            sim,
            observed,
            buffer,
            trigger: None,
            runtime_faults: Vec::new(),
            sticky: HashMap::new(),
            cycle: 0,
        })
    }

    /// Attach a trigger over the observed signals.
    pub fn set_trigger(&mut self, trigger: TriggerUnit) {
        self.trigger = Some(trigger);
    }

    /// Register a runtime fault (currently [`Fault::BitFlip`] on a latch).
    pub fn add_runtime_fault(&mut self, fault: &Fault) -> Result<(), String> {
        match fault {
            Fault::BitFlip { net, cycle } => {
                let id = self.nw.find(net).ok_or_else(|| format!("no net {net}"))?;
                if !self.nw.node(id).is_latch() {
                    return Err(format!("{net} is not a latch"));
                }
                self.runtime_faults.push((id, *cycle));
                Ok(())
            }
            _ => Err("static faults must be applied to the netlist before emulation".into()),
        }
    }

    /// Hold an input at a fixed value every cycle (how the debugging
    /// session drives the select parameters of a specialization).
    pub fn set_sticky_input(&mut self, input: NodeId, value: bool) {
        self.sticky.insert(input, if value { !0u64 } else { 0 });
    }

    /// Hold the named input at a fixed value.
    pub fn set_sticky_by_name(&mut self, name: &str, value: bool) -> Result<(), String> {
        let id = self.nw.find(name).ok_or_else(|| format!("no input {name}"))?;
        self.set_sticky_input(id, value);
        Ok(())
    }

    /// Current cycle count.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Run one clock cycle with the given input values (lane 0 of the
    /// bit-parallel simulator carries the emulation). Returns `true` if
    /// the trace buffer froze this cycle.
    pub fn step(&mut self, inputs: &HashMap<NodeId, bool>) -> bool {
        let mut words: HashMap<NodeId, u64> =
            inputs.iter().map(|(&k, &v)| (k, if v { 1u64 } else { 0 })).collect();
        for (&k, &v) in &self.sticky {
            words.insert(k, v);
        }
        self.sim.settle(&words);

        // Sample observed signals.
        let sample: BitVec = self.observed.iter().map(|&n| self.sim.value_lane(n, 0)).collect();
        self.buffer.capture(&sample);
        let mut froze = false;
        if let Some(trig) = &mut self.trigger {
            if !self.buffer.is_frozen() && trig.step(&sample) {
                self.buffer.freeze();
                froze = true;
            }
        }

        // Clock latches (mirror Simulator::step's latch update).
        self.clock_latches(&words);

        // Runtime faults due this cycle.
        for &(latch, at) in &self.runtime_faults {
            if at == self.cycle {
                let cur = self.sim.latch_state(latch);
                self.sim.set_latch_state(latch, cur ^ 1);
            }
        }
        self.cycle += 1;
        froze
    }

    fn clock_latches(&mut self, words: &HashMap<NodeId, u64>) {
        // Simulator::step settles then clocks; we already settled with
        // identical inputs, so re-stepping is equivalent and keeps the
        // sequential semantics in one place.
        self.sim.step(words);
    }

    /// Run `n` cycles with seeded random primary-input stimulus. Returns
    /// the cycle at which capture froze, if it did.
    pub fn run_random(&mut self, n: usize, seed: u64) -> Option<usize> {
        let _run_span = pfdbg_obs::span("emu.run");
        let start_cycle = self.cycle;
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<NodeId> = self.nw.inputs().filter(|&i| !self.nw.node(i).is_param).collect();
        let mut froze = None;
        for _ in 0..n {
            let stim: HashMap<NodeId, bool> = inputs.iter().map(|&i| (i, rng.gen())).collect();
            if self.step(&stim) {
                froze = Some(self.cycle - 1);
                break;
            }
        }
        // One bulk update per run keeps the per-cycle path lock-free.
        pfdbg_obs::counter_add("emu.cycles", (self.cycle - start_cycle) as u64);
        froze
    }

    /// Read the capture back as a waveform named by the observed nets.
    pub fn waveform(&self) -> Waveform {
        let names: Vec<String> =
            self.observed.iter().map(|&n| self.nw.node(n).name.clone()).collect();
        self.buffer.readback(&names)
    }

    /// The value currently on a net (after the last `step`).
    pub fn peek(&self, name: &str) -> Option<bool> {
        self.nw.find(name).map(|id| self.sim.value_lane(id, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_netlist::truth::gates;
    use pfdbg_trace::PortCond;

    /// A 2-bit counter with enable.
    fn counter() -> Network {
        let mut nw = Network::new("cnt");
        let en = nw.add_input("en");
        let q0 = nw.add_latch("q0", en, false);
        let q1 = nw.add_latch("q1", en, false);
        // q0' = q0 XOR en
        let d0 = nw.add_table("d0", vec![q0, en], gates::xor2());
        nw.set_latch_data(q0, d0);
        // q1' = q1 XOR (q0 AND en)
        let c = nw.add_table("c", vec![q0, en], gates::and2());
        let d1 = nw.add_table("d1", vec![q1, c], gates::xor2());
        nw.set_latch_data(q1, d1);
        nw.add_output("q0", q0);
        nw.add_output("q1", q1);
        nw
    }

    #[test]
    fn counter_counts() {
        let nw = counter();
        let mut emu = Emulator::new(&nw, &["q0", "q1"], 16).unwrap();
        let en = nw.find("en").unwrap();
        let mut seq = Vec::new();
        for _ in 0..5 {
            emu.step(&HashMap::from([(en, true)]));
            seq.push((emu.peek("q0").unwrap(), emu.peek("q1").unwrap()));
        }
        // After each step the *new* state shows on the next settle; peek
        // reads post-clock values only after the following settle, so read
        // the waveform instead (captured pre-clock).
        let wf = emu.waveform();
        let q0: Vec<bool> = wf.series("q0").unwrap();
        let q1: Vec<bool> = wf.series("q1").unwrap();
        assert_eq!(q0, vec![false, true, false, true, false]);
        assert_eq!(q1, vec![false, false, true, true, false]);
        let _ = seq;
    }

    #[test]
    fn trigger_freezes_buffer() {
        let nw = counter();
        let mut emu = Emulator::new(&nw, &["q0", "q1"], 16).unwrap();
        let mut trig = TriggerUnit::new(2);
        // Fire when the counter reaches 3 (q0 = 1, q1 = 1).
        trig.set_cond(0, PortCond::Level(true));
        trig.set_cond(1, PortCond::Level(true));
        emu.set_trigger(trig);
        let en = nw.find("en").unwrap();
        let mut frozen_at = None;
        for _ in 0..10 {
            if emu.step(&HashMap::from([(en, true)])) {
                frozen_at = Some(emu.cycle() - 1);
                break;
            }
        }
        assert_eq!(frozen_at, Some(3), "counter shows 3 during cycle 3");
        // Buffer holds exactly the samples up to the freeze.
        assert_eq!(emu.waveform().n_samples(), 4);
    }

    #[test]
    fn runtime_bitflip_perturbs_state() {
        let nw = counter();
        let run = |flip: bool| -> Vec<bool> {
            let mut emu = Emulator::new(&nw, &["q1"], 32).unwrap();
            if flip {
                emu.add_runtime_fault(&Fault::BitFlip { net: "q1".into(), cycle: 2 }).unwrap();
            }
            let en = nw.find("en").unwrap();
            for _ in 0..8 {
                emu.step(&HashMap::from([(en, true)]));
            }
            emu.waveform().series("q1").unwrap()
        };
        let clean = run(false);
        let faulty = run(true);
        assert_eq!(clean[..3], faulty[..3], "prefix identical before the flip");
        assert_ne!(clean, faulty, "flip must be visible later");
    }

    #[test]
    fn unknown_observed_signal_is_error() {
        let nw = counter();
        assert!(Emulator::new(&nw, &["nope"], 8).is_err());
    }

    #[test]
    fn run_random_is_deterministic() {
        let nw = counter();
        let mut e1 = Emulator::new(&nw, &["q0", "q1"], 64).unwrap();
        let mut e2 = Emulator::new(&nw, &["q0", "q1"], 64).unwrap();
        e1.run_random(50, 42);
        e2.run_random(50, 42);
        assert_eq!(e1.waveform(), e2.waveform());
    }
}
