//! The content-addressed on-disk store.
//!
//! Artifacts are keyed by a fingerprint of everything that determines
//! the offline-flow output: the instrumented netlist, its parameter
//! annotations and port wiring, and the [`OfflineConfig`]. Two runs on
//! the same inputs hash to the same key, so the second compile loads
//! the artifact instead of re-running synth/map/TPaR — the whole point
//! of splitting the flow into a generic and a specialization stage.

use crate::artifact::{Artifact, CompiledDesign, FORMAT_VERSION};
use pfdbg_core::{offline, Instrumented, OfflineConfig};
use pfdbg_netlist::blif;
use std::hash::Hasher;
use std::path::{Path, PathBuf};

/// Whether a compile was served from the store or recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Loaded from a stored artifact; offline flow skipped.
    Hit,
    /// Offline flow ran; the artifact was stored for next time.
    Miss,
}

/// A directory of compiled-design artifacts, one file per fingerprint.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, String> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create store dir {}: {e}", root.display()))?;
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Content fingerprint of one compile: the instrumented design
    /// (netlist text, `.par` text, port wiring) plus the offline
    /// configuration and the artifact format version. Anything that can
    /// change the offline output must feed this hash.
    pub fn fingerprint(inst: &Instrumented, cfg: &OfflineConfig) -> String {
        let mut h = pfdbg_util::hash::FxHasher::default();
        h.write(blif::write(&inst.network).as_bytes());
        h.write(inst.annotations.write().as_bytes());
        for p in &inst.ports {
            h.write(p.name.as_bytes());
            for s in &p.sel_params {
                h.write(s.as_bytes());
            }
            for s in &p.signals {
                h.write(s.as_bytes());
            }
        }
        h.write(format!("{cfg:?}").as_bytes());
        h.write_u32(FORMAT_VERSION);
        format!("{:016x}", h.finish())
    }

    /// The on-disk path an artifact with this key lives at.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.pfdbg"))
    }

    /// Load and instantiate the artifact for `key`. `Ok(None)` when the
    /// store has no entry; an existing-but-invalid file is an error.
    pub fn load(&self, key: &str) -> Result<Option<CompiledDesign>, String> {
        let _s = pfdbg_obs::span("store.load");
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let artifact =
            Artifact::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        let design = artifact.instantiate().map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Some(design))
    }

    /// Write the artifact for `key` atomically: encode to a temp file in
    /// the store directory, then rename over the final path. A reader
    /// never observes a half-written artifact, and a crash leaves at
    /// worst a stale `.tmp` file.
    pub fn save(&self, key: &str, artifact: &Artifact) -> Result<PathBuf, String> {
        let _s = pfdbg_obs::span("store.save");
        let path = self.path_for(key);
        let tmp = self.root.join(format!("{key}.tmp.{}", std::process::id()));
        let bytes = artifact.to_bytes();
        std::fs::write(&tmp, &bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot move artifact into place at {}: {e}", path.display())
        })?;
        Ok(path)
    }

    /// The store-aware offline flow: return the cached compile when the
    /// fingerprint matches, otherwise run [`pfdbg_core::offline`] and
    /// store the result. A corrupted or unreadable cache entry is
    /// treated as a miss (and overwritten), never a hard failure —
    /// the store must not be able to make a compile fail that would
    /// succeed without it.
    pub fn offline_cached(
        &self,
        inst: &Instrumented,
        cfg: &OfflineConfig,
    ) -> Result<(CompiledDesign, CacheOutcome), String> {
        let _s = pfdbg_obs::span("store.offline_cached");
        if !cfg.run_pr {
            return Err("the artifact store requires run_pr (nothing to cache without a generalized bitstream)".into());
        }
        let key = Self::fingerprint(inst, cfg);
        match self.load(&key) {
            Ok(Some(design)) => {
                pfdbg_obs::counter_add("store.hit", 1);
                return Ok((design, CacheOutcome::Hit));
            }
            Ok(None) => {}
            Err(e) => {
                pfdbg_obs::counter_add("store.invalid", 1);
                eprintln!("pfdbg-store: discarding invalid artifact: {e}");
            }
        }
        pfdbg_obs::counter_add("store.miss", 1);
        let off = offline(inst, cfg)?;
        let scg = off.scg.ok_or("offline flow produced no SCG")?;
        let layout = off.layout.ok_or("offline flow produced no layout")?;
        let artifact = Artifact::capture(inst, &off.map_stats, &layout, &scg);
        self.save(&key, &artifact)?;
        let design = CompiledDesign {
            inst: inst.clone(),
            map_stats: off.map_stats,
            scg,
            layout,
            icap: off.icap,
        };
        Ok((design, CacheOutcome::Miss))
    }
}
