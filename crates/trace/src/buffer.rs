//! Embedded trace-buffer model.
//!
//! On-chip debug instruments record the values of a small set of signals
//! into embedded block RAM during normal device operation. We model one
//! trace buffer as a circular memory of `depth` samples × `width` signal
//! ports. The debugging flow connects (via the parameterized multiplexer
//! network) a chosen subset of user signals to the ports; the emulator
//! pushes one sample per clock cycle; the engineer reads the capture
//! back as a [`crate::waveform::Waveform`].

use crate::waveform::Waveform;
use pfdbg_util::BitVec;

/// A circular on-chip trace memory.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    width: usize,
    depth: usize,
    /// Sample ring: `depth` rows of `width` bits.
    rows: Vec<BitVec>,
    /// Next write slot.
    head: usize,
    /// Total samples ever written (saturating at usize::MAX).
    written: usize,
    /// Frozen (capture stopped by the trigger unit)?
    frozen: bool,
}

impl TraceBuffer {
    /// A buffer capturing `width` signals with `depth` samples of
    /// history.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "degenerate trace buffer");
        TraceBuffer {
            width,
            depth,
            rows: vec![BitVec::zeros(width); depth],
            head: 0,
            written: 0,
            frozen: false,
        }
    }

    /// Signals captured per sample.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sample capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of valid samples currently stored (≤ depth).
    pub fn n_valid(&self) -> usize {
        self.written.min(self.depth)
    }

    /// Whether capture is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Record one sample (ignored while frozen). `sample[i]` is port `i`.
    pub fn capture(&mut self, sample: &BitVec) {
        assert_eq!(sample.len(), self.width, "sample width mismatch");
        if self.frozen {
            return;
        }
        self.rows[self.head] = sample.clone();
        self.head = (self.head + 1) % self.depth;
        self.written = self.written.saturating_add(1);
    }

    /// Stop capturing (the trigger fired and the post-trigger window
    /// elapsed).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Clear and re-arm.
    pub fn reset(&mut self) {
        for r in &mut self.rows {
            r.clear_bits();
        }
        self.head = 0;
        self.written = 0;
        self.frozen = false;
    }

    /// Read the capture back, oldest sample first, as a waveform over the
    /// given port names (`names.len()` must equal `width`).
    pub fn readback(&self, names: &[String]) -> Waveform {
        assert_eq!(names.len(), self.width, "port name count mismatch");
        let n = self.n_valid();
        let start = if self.written >= self.depth { self.head } else { 0 };
        let mut wf = Waveform::new(names.to_vec());
        for i in 0..n {
            let row = &self.rows[(start + i) % self.depth];
            wf.push_sample(row);
        }
        wf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: &[bool]) -> BitVec {
        bits.iter().copied().collect()
    }

    #[test]
    fn capture_and_readback_in_order() {
        let mut tb = TraceBuffer::new(2, 4);
        tb.capture(&sample(&[true, false]));
        tb.capture(&sample(&[false, true]));
        let wf = tb.readback(&["a".into(), "b".into()]);
        assert_eq!(wf.n_samples(), 2);
        assert_eq!(wf.value("a", 0), Some(true));
        assert_eq!(wf.value("b", 0), Some(false));
        assert_eq!(wf.value("a", 1), Some(false));
        assert_eq!(wf.value("b", 1), Some(true));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut tb = TraceBuffer::new(1, 3);
        for i in 0..5 {
            tb.capture(&sample(&[i % 2 == 0])); // T F T F T
        }
        assert_eq!(tb.n_valid(), 3);
        let wf = tb.readback(&["s".into()]);
        // Last three samples: T F T (i = 2, 3, 4).
        assert_eq!(
            (0..3).map(|i| wf.value("s", i).unwrap()).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn freeze_stops_capture() {
        let mut tb = TraceBuffer::new(1, 4);
        tb.capture(&sample(&[true]));
        tb.freeze();
        tb.capture(&sample(&[false]));
        assert_eq!(tb.n_valid(), 1);
        assert!(tb.is_frozen());
        tb.reset();
        assert_eq!(tb.n_valid(), 0);
        assert!(!tb.is_frozen());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_sample_width_panics() {
        let mut tb = TraceBuffer::new(2, 4);
        tb.capture(&sample(&[true]));
    }
}
