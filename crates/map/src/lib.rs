//! Technology mapping for the parameterized debugging flow: cut
//! enumeration, the conventional baselines (SimpleMap, ABC-style priority
//! cuts) and the paper's parameter-aware TCONMap that folds multiplexer
//! networks into tunable LUTs (TLUTs) and tunable connections (TCONs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod cuts;
pub mod mapper;
pub mod netmap;
pub mod simple;

pub use cuts::{Cut, CutConfig, CutDb};
pub use mapper::{map, map_with, ElemKind, MappedElement, MapperKind, Mapping};
pub use netmap::{
    depth_with_kinds, map_parameterized_network, map_parameterized_network_with, MappedParam,
    NetMapStats,
};
pub use simple::simple_map;
