//! TPaR: parameterization-aware pack, place and route.
//!
//! * [`mod@pack`] — TPack: VPack-style clustering; TCON elements dissolve
//!   into *tunable nets* instead of consuming BLEs,
//! * [`mod@place`] — TPlace: VPR-style simulated-annealing placement,
//! * [`mod@route`] — TRoute: PathFinder negotiated congestion with
//!   within-net sharing for tunable nets,
//! * [`mod@tpar`] — the end-to-end driver with device auto-sizing and
//!   channel-width retries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod pack;
pub mod place;
pub mod route;
pub mod timing;
pub mod tpar;

pub use congestion::{analyze as analyze_congestion, ChannelUse, CongestionReport};
pub use pack::{pack, Ble, Block, Cluster, PRNet, PackConfig, PackedDesign, SourceRef};
pub use place::{place, Loc, PlaceConfig, Placement};
pub use route::{route, BranchRoute, NetRoute, RouteConfig, RoutedDesign};
pub use timing::{analyze as analyze_timing, DelayModel, TimingReport};
pub use tpar::{place_parallel, tpar, TparConfig, TparResult, TparStats};
