//! Concurrent debug service over the online specialization stage.
//!
//! `pfdbg-serve` exposes a compiled design (a shared SCG plus layout
//! and reconfiguration-port model) to many clients at once: a
//! `std::net` TCP server with a nonblocking IO loop, a line-delimited
//! JSON protocol (the flat JSONL schema from `pfdbg-obs`), a sharded
//! session fleet — sessions pin to owner threads by name hash, with
//! bounded per-shard inboxes and `overloaded` shedding under pressure
//! — and an LRU cache of specialized frame-sets keyed by parameter
//! vector. Requests carry deadlines; failures become error replies,
//! never server panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lru;
pub mod protocol;
pub mod server;
pub mod session;
mod shard;
mod telemetry;

pub use protocol::{Reply, Request};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{
    primary_device_of, DeviceOptions, DeviceTotals, FleetOptions, IcapTotals, SessionManager,
    TurnOutcome,
};
pub use shard::ShardHold;
