//! `pfdbg` — command-line driver for the parameterized FPGA debugging
//! flow.
//!
//! ```text
//! pfdbg instrument <design.blif> [--ports N] [--coverage C] [--out inst.blif] [--par inst.par]
//! pfdbg compare    <design.blif|@benchmark> [--k K] [--ports N] [--coverage C]
//! pfdbg offline    <design.blif|@benchmark> [--k K] [--ports N]
//! pfdbg observe    <design.blif|@benchmark> --signals s1,s2|auto [--cycles N]
//! pfdbg rank       <design.blif|@benchmark> [--top N]
//! pfdbg report     <trace.jsonl>
//! pfdbg scrub      <design.blif|@benchmark> [--turns N] [--scrub-every N] [--seu-rate R]
//! pfdbg serve      <design.blif|@benchmark> [--addr H:P|--port P] [--workers N] [--shards N] [--devices N] [--spares N] [--port-file f]
//! pfdbg client     <host:port> [--request '<json>'] [--shutdown]
//! pfdbg bench-list
//! ```
//!
//! `@name` selects a generated benchmark from the calibrated suite
//! (e.g. `@stereov.`, `@clma`).
//!
//! Commands that run the offline flow (`offline`, `observe`, `serve`)
//! go through the content-addressed artifact store by default
//! (`.pfdbg-store/` in the working directory): the first compile of a
//! design stores its generalized bitstream, and every later run on the
//! same inputs is a cache hit that skips synth/map/TPaR entirely.
//! `--store-dir <dir>` relocates the store, `--no-store` bypasses it.
//!
//! The global flags `--profile` (print the hierarchical span report on
//! exit) and `--trace-out <file.jsonl>` (export every recorded event)
//! switch the observability layer on; `pfdbg report` digests a trace
//! file back into a summary.

use pfdbg_core::{
    compare_mappers, instrument, offline, prepare_instrumented, rank_signals, DebugSession,
    InstrumentConfig, OfflineConfig, PAPER_K,
};
use pfdbg_netlist::{blif, Network};
use pfdbg_pconf::OnlineReconfigurator;
use pfdbg_store::{ArtifactStore, CacheOutcome};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = take_switch(&mut args, "--profile");
    let trace_out = take_valued(&mut args, "--trace-out");
    if trace_out.is_none() && args.iter().any(|a| a == "--trace-out") {
        pfdbg_obs::diag("--trace-out expects a file path");
        return ExitCode::FAILURE;
    }
    // Global thread override: every parallel stage (mapping, routing,
    // generalized-bitstream construction, SCG specialization shards)
    // resolves its 0=auto thread count through this policy.
    match take_valued(&mut args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => pfdbg_util::par::set_threads(n),
            Err(_) => {
                pfdbg_obs::diag(&format!("--threads expects a number, got {v:?}"));
                return ExitCode::FAILURE;
            }
        },
        None => {
            if args.iter().any(|a| a == "--threads") {
                pfdbg_obs::diag("--threads expects a number");
                return ExitCode::FAILURE;
            }
        }
    }
    if profile || trace_out.is_some() {
        pfdbg_obs::set_enabled(true);
    }

    let result = run(&args);

    // Result tables own stdout; the profile report is a diagnostic.
    if profile {
        eprint!("{}", pfdbg_obs::registry().render_tree());
    }
    let mut code = match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            pfdbg_obs::diag(&e);
            ExitCode::FAILURE
        }
    };
    if let Some(path) = trace_out {
        match std::fs::write(&path, pfdbg_obs::registry().to_jsonl()) {
            Ok(()) => pfdbg_obs::diag(&format!("wrote trace to {path}")),
            Err(e) => {
                pfdbg_obs::diag(&format!("{path}: {e}"));
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

/// Remove a boolean flag from the argument list, reporting its presence.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Remove a `--flag value` pair from the argument list.
fn take_valued(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "instrument" => cmd_instrument(rest),
        "compare" => cmd_compare(rest),
        "offline" => cmd_offline(rest),
        "observe" => cmd_observe(rest),
        "rank" => cmd_rank(rest),
        "localize" => cmd_localize(rest),
        "report" => cmd_report(rest),
        "scrub" => cmd_scrub(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "top" => cmd_top(rest),
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "fuzz" => cmd_fuzz(rest),
        "bench-list" => {
            for name in pfdbg_circuits::names() {
                let row = pfdbg_circuits::paper_row(name).expect("known");
                println!(
                    "{name:10} {:>6} gates (paper: {:>5} initial LUTs)",
                    row.gates, row.initial_luts
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    }
}

fn print_usage() {
    println!(
        "pfdbg — parameterized FPGA debugging flow\n\
         \n\
         usage:\n\
         \x20 pfdbg instrument <design.blif> [--ports N] [--coverage C] [--out f.blif] [--par f.par]\n\
         \x20 pfdbg compare    <design.blif|@bench> [--k K] [--ports N] [--coverage C]\n\
         \x20 pfdbg offline    <design.blif|@bench> [--k K] [--ports N] [--dump-bitstream f.pfb]\n\
         \x20 pfdbg observe    <design.blif|@bench> --signals s1,s2|auto [--cycles N]\n\
         \x20                  [--icap-fault-rate R] [--icap-seed S] [--max-retries N]\n\
         \x20 pfdbg rank       <design.blif|@bench> [--top N]\n\
         \x20 pfdbg localize   <design.blif|@bench> [--bug <net>] [--cycles N]\n\
         \x20 pfdbg report     <trace.jsonl>\n\
         \x20 pfdbg scrub      <design.blif|@bench> [--turns N] [--scrub-every N]\n\
         \x20                  [--seu-rate R] [--seu-seed S] [--seu-burst B] [--icap-fault-rate R]\n\
         \x20 pfdbg serve      <design.blif|@bench> [--addr H:P|--port P] [--workers N] [--cache N] [--port-file f]\n\
         \x20                  [--shards N] [--inbox-cap N] (session-owning shard threads; bounded inboxes)\n\
         \x20                  [--icap-fault-rate R] [--icap-seed S] [--max-retries N]\n\
         \x20                  [--scrub-interval MS] [--seu-rate R] [--seu-seed S] [--seu-burst B]\n\
         \x20                  [--journal-dir DIR] (record every session; restore on restart)\n\
         \x20                  [--devices N] [--spares N] (supervised device fleet with failover)\n\
         \x20 pfdbg record     <design.blif|@bench|gen:SEED> --out <f.pfdj> [--turns N] [--seed S]\n\
         \x20                  [--scrub-every N] [--session NAME] [chaos flags as for serve]\n\
         \x20 pfdbg replay     <journal.pfdj> [--at-threads N] (exit 1 on divergence)\n\
         \x20 pfdbg fuzz       [--cases N] [--seed S] [--corpus-dir DIR] (differential turn fuzzer)\n\
         \x20 pfdbg client     <host:port> [--request '<json>'] [--shutdown]\n\
         \x20 pfdbg top        <host:port> [--interval MS] [--iters N] [--no-clear]\n\
         \x20 pfdbg bench-list\n\
         \n\
         global flags: --profile (span report on exit), --trace-out <f.jsonl>,\n\
         \x20 --threads N (worker threads for map/route/genbits/specialize; also PFDBG_THREADS)\n\
         store flags (offline/observe/serve): --store-dir <dir> (default .pfdbg-store), --no-store\n\
         `@name` uses a generated benchmark from the calibrated suite."
    );
}

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1).cloned())
}

fn flag_usize(rest: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(rest, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name} expects a number, got {v:?}")),
    }
}

fn flag_f64(rest: &[String], name: &str, default: f64) -> Result<f64, String> {
    match flag(rest, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name} expects a number, got {v:?}")),
    }
}

/// Chaos knobs shared by `observe` and `serve`: an ICAP fault-injection
/// config (explicit `--icap-fault-rate`, falling back to
/// `PFDBG_ICAP_FAULT_RATE`) and the commit retry policy.
fn chaos_from_flags(
    rest: &[String],
) -> Result<(Option<pfdbg_emu::IcapFaultConfig>, pfdbg_pconf::CommitPolicy), String> {
    let rate = flag_f64(rest, "--icap-fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--icap-fault-rate expects a rate in [0, 1], got {rate}"));
    }
    let seed = flag_usize(rest, "--icap-seed", 0x1CAB_FA17)? as u64;
    let defaults = pfdbg_pconf::CommitPolicy::default();
    let policy = pfdbg_pconf::CommitPolicy {
        max_retries: flag_usize(rest, "--max-retries", defaults.max_retries as usize)? as u32,
        ..defaults
    };
    let fault = if rate > 0.0 {
        Some(pfdbg_emu::IcapFaultConfig::uniform(rate, seed))
    } else {
        pfdbg_emu::IcapFaultConfig::from_env()
    };
    Ok((fault, policy))
}

/// SEU knobs shared by `scrub` and `serve`: an explicit `--seu-rate`
/// (with `--seu-seed`/`--seu-burst`) wins, `PFDBG_SEU_RATE` is the
/// fallback, and an explicit rate of 0 disables injection even when the
/// environment is set.
fn seu_from_flags(rest: &[String]) -> Result<Option<pfdbg_emu::SeuConfig>, String> {
    let Some(rate) = flag(rest, "--seu-rate") else {
        return Ok(pfdbg_emu::SeuConfig::from_env());
    };
    let rate: f64 =
        rate.parse().map_err(|_| format!("--seu-rate expects a number, got {rate:?}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--seu-rate expects a rate in [0, 1], got {rate}"));
    }
    if rate == 0.0 {
        return Ok(None);
    }
    let seed = flag_usize(rest, "--seu-seed", 0x5EED_05E0)? as u64;
    let burst = flag_usize(rest, "--seu-burst", 1)?.max(1);
    Ok(Some(pfdbg_emu::SeuConfig { rate, burst, seed }))
}

/// Assemble an [`OnlineReconfigurator`] over a reliable in-memory
/// channel, or over a fault-injecting one when chaos is configured.
fn build_online(
    scg: pfdbg_pconf::Scg,
    layout: pfdbg_arch::BitstreamLayout,
    icap: pfdbg_arch::IcapModel,
    fault: Option<pfdbg_emu::IcapFaultConfig>,
    policy: pfdbg_pconf::CommitPolicy,
) -> OnlineReconfigurator {
    let mem = pfdbg_pconf::MemoryIcap::new(scg.generalized().base.clone(), layout.frame_bits);
    let channel: Box<dyn pfdbg_pconf::IcapChannel> = match fault {
        Some(cfg) => Box::new(pfdbg_emu::FaultyIcap::new(mem, cfg)),
        None => Box::new(mem),
    };
    OnlineReconfigurator::with_channel(scg, layout, icap, channel, policy)
}

fn load_design(rest: &[String]) -> Result<(String, Network), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a design file or @benchmark")?;
    if let Some(name) = path.strip_prefix('@') {
        let nw = pfdbg_circuits::build(name)
            .ok_or_else(|| format!("unknown benchmark {name:?} (see bench-list)"))?;
        return Ok((name.to_string(), nw));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let nw = if path.ends_with(".v") || path.ends_with(".sv") {
        pfdbg_netlist::verilog::parse(&text).map_err(|e| e.to_string())?
    } else {
        blif::parse(&text).map_err(|e| e.to_string())?
    };
    Ok((path.clone(), nw))
}

/// The artifact store selected by `--store-dir <dir>` / `--no-store`.
/// Defaults to `.pfdbg-store` in the working directory; `None` means
/// the flow runs uncached.
fn store_from_flags(rest: &[String]) -> Result<Option<ArtifactStore>, String> {
    if rest.iter().any(|a| a == "--no-store") {
        return Ok(None);
    }
    let dir = flag(rest, "--store-dir").unwrap_or_else(|| ".pfdbg-store".into());
    ArtifactStore::open(dir).map(Some)
}

fn icfg(rest: &[String]) -> Result<InstrumentConfig, String> {
    Ok(InstrumentConfig {
        n_ports: flag_usize(rest, "--ports", 4)?,
        coverage: flag_usize(rest, "--coverage", 1)?,
        max_signals: match flag(rest, "--max-signals") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| "--max-signals expects a number".to_string())?),
        },
    })
}

fn cmd_instrument(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let inst = instrument(&nw, &icfg(rest)?);
    let blif_text = blif::write(&inst.network);
    let par_text = inst.annotations.write();
    match flag(rest, "--out") {
        Some(path) => std::fs::write(&path, blif_text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{blif_text}"),
    }
    if let Some(path) = flag(rest, "--par") {
        std::fs::write(&path, par_text).map_err(|e| format!("{path}: {e}"))?;
    }
    pfdbg_obs::diag(&format!(
        "instrumented {name}: {} observable signals, {} ports, {} parameters",
        inst.observable().len(),
        inst.ports.len(),
        inst.n_params()
    ));
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a trace file (produced by --trace-out)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = pfdbg_obs::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", pfdbg_obs::summarize(&events));
    Ok(())
}

fn cmd_compare(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let mut cfg = icfg(rest)?;
    if flag(rest, "--coverage").is_none() {
        cfg.coverage = 2; // paper density by default for comparisons
    }
    let cmp = compare_mappers(&name, &nw, &cfg, k)?;
    let mut t = pfdbg_util::table::Table::new([
        "Benchmark",
        "#Gate",
        "Initial",
        "SM",
        "ABC",
        "Proposed(TLUT/TCON)",
    ]);
    t.row([
        cmp.name.clone(),
        cmp.gates.to_string(),
        cmp.initial_luts.to_string(),
        cmp.sm_luts.to_string(),
        cmp.abc_luts.to_string(),
        format!("{}({}/{})", cmp.proposed_luts, cmp.tluts, cmp.tcons),
    ]);
    print!("{}", t.render());
    println!(
        "\ndepths: golden {} | SM {} | ABC {} | proposed {}   reduction {:.2}x",
        cmp.depth_golden,
        cmp.depth_sm,
        cmp.depth_abc,
        cmp.depth_proposed,
        cmp.reduction_factor()
    );
    Ok(())
}

/// Write the params=0 default specialization as a loadable file when
/// `--dump-bitstream` asks for one (shared by the cold and cached
/// offline paths).
fn dump_bitstream(
    rest: &[String],
    scg: &pfdbg_pconf::Scg,
    layout: &pfdbg_arch::BitstreamLayout,
) -> Result<(), String> {
    if let Some(path) = flag(rest, "--dump-bitstream") {
        let params = pfdbg_util::BitVec::zeros(scg.generalized().n_params);
        let bs = scg.specialize(&params);
        let bytes = pfdbg_arch::bitfile::write(&bs, layout.frame_bits);
        std::fs::write(&path, &bytes).map_err(|e| format!("{path}: {e}"))?;
        println!("  wrote default specialization to {path} ({} bytes)", bytes.len());
    }
    Ok(())
}

fn cmd_offline(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    let cfg = OfflineConfig { k, ..Default::default() };
    let store = store_from_flags(rest)?;

    // Cache hit: the artifact carries everything the summary (and
    // --dump-bitstream) needs; the detailed place & route statistics
    // only exist on a fresh compile.
    if let Some(store) = &store {
        let key = ArtifactStore::fingerprint(&inst, &cfg);
        match store.load(&key) {
            Ok(Some(d)) => {
                println!("offline generic stage for {name} (cached artifact {key}):");
                println!(
                    "  mapping: {} LUTs + {} TLUTs + {} TCONs, depth {}",
                    d.map_stats.luts, d.map_stats.tluts, d.map_stats.tcons, d.map_stats.depth
                );
                println!(
                    "  bitstream: {} bits in {} frames; {} parameterized bits ({:.3}%)",
                    d.layout.n_bits,
                    d.layout.n_frames(),
                    d.scg.generalized().n_tunable(),
                    d.scg.generalized().tunable_fraction() * 100.0
                );
                println!("  (cache hit — run with --no-store for full place&route detail)");
                return dump_bitstream(rest, &d.scg, &d.layout);
            }
            Ok(None) => {}
            Err(e) => pfdbg_obs::diag(&format!("discarding invalid artifact: {e}")),
        }
    }

    let off = offline(&inst, &cfg)?;
    println!("offline generic stage for {name}:");
    println!(
        "  mapping: {} LUTs + {} TLUTs + {} TCONs, depth {}",
        off.map_stats.luts, off.map_stats.tluts, off.map_stats.tcons, off.map_stats.depth
    );
    if let (Some(t), Some(scg), Some(layout)) = (&off.tpar, &off.scg, &off.layout) {
        println!(
            "  place&route: {} CLBs, {} nets ({} tunable), {} wires, {} switches, {:?}",
            t.stats.n_clbs,
            t.stats.n_nets,
            t.stats.n_tunable_nets,
            t.stats.wires_used,
            t.stats.n_switches,
            t.stats.runtime
        );
        println!(
            "  bitstream: {} bits in {} frames; {} parameterized bits ({:.3}%)",
            layout.n_bits,
            layout.n_frames(),
            scg.generalized().n_tunable(),
            scg.generalized().tunable_fraction() * 100.0
        );
        if let Ok(timing) =
            pfdbg_pr::analyze_timing(&off.mapped, &off.kinds, t, &pfdbg_pr::DelayModel::default())
        {
            println!(
                "  timing: critical path {:.2} ns over {} LUT levels",
                timing.critical_delay, timing.levels
            );
        }
        let congestion =
            pfdbg_pr::analyze_congestion(&t.packed, &t.routed, &t.rrg, t.stats.channel_width);
        println!(
            "  congestion: peak channel {:.0}%, mean {:.0}%, tunable share {:.0}%",
            congestion.peak_utilization * 100.0,
            congestion.mean_utilization * 100.0,
            congestion.tunable_share * 100.0
        );
        dump_bitstream(rest, scg, layout)?;
    }
    if let (Some(store), Some(scg), Some(layout)) = (&store, &off.scg, &off.layout) {
        let key = ArtifactStore::fingerprint(&inst, &cfg);
        let path = store
            .save(&key, &pfdbg_store::Artifact::capture(&inst, &off.map_stats, layout, scg))?;
        pfdbg_obs::diag(&format!("stored compiled artifact at {}", path.display()));
    }
    Ok(())
}

fn cmd_observe(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let signals_arg = flag(rest, "--signals").ok_or("--signals s1,s2,...|auto is required")?;
    let cycles = flag_usize(rest, "--cycles", 32)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;

    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    // `auto` observes the first signal of every trace port — a guaranteed
    // feasible selection, useful for smoke runs and for discovering what
    // the instrumented design can see.
    let wanted: Vec<String> = if signals_arg == "auto" {
        inst.ports.iter().filter_map(|p| p.signals.first().cloned()).collect()
    } else {
        signals_arg.split(',').map(str::to_string).collect()
    };
    let wanted: Vec<&str> = wanted.iter().map(String::as_str).collect();
    let cfg = OfflineConfig { k, ..Default::default() };
    let (fault, policy) = chaos_from_flags(rest)?;
    let online = match store_from_flags(rest)? {
        Some(store) => {
            let (d, outcome) = store.offline_cached(&inst, &cfg)?;
            pfdbg_obs::diag(match outcome {
                CacheOutcome::Hit => "artifact store: hit (offline flow skipped)",
                CacheOutcome::Miss => "artifact store: miss (compiled and stored)",
            });
            Some(build_online(d.scg, d.layout, d.icap, fault, policy))
        }
        None => {
            let off = offline(&inst, &cfg)?;
            match (off.scg, off.layout) {
                (Some(scg), Some(layout)) => {
                    Some(build_online(scg, layout, off.icap, fault, policy))
                }
                _ => None,
            }
        }
    };
    let dut = inst.network.clone();
    let mut session = DebugSession::new(inst, online);
    let wf = session.observe(&dut, &wanted, cycles, 0xD0, &[])?;
    println!("captured {} cycles of {name}:", wf.n_samples());
    print!("{}", wf.render_ascii());
    if let Some(turn) = session.turns().last() {
        if let Some(stats) = &turn.stats {
            println!(
                "turn cost: {} bits / {} frames changed; eval {:?} + transfer {:?} + verify {:?} \
                 ({} retries, {} degradations)",
                stats.bits_changed,
                stats.frames_changed,
                stats.eval_time,
                stats.transfer_time,
                stats.verify_time,
                stats.retries,
                stats.degradations
            );
        }
    }
    Ok(())
}

fn cmd_rank(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let top = flag_usize(rest, "--top", 20)?;
    println!("top {top} debug-critical signals of {name}:");
    for r in rank_signals(&nw).into_iter().take(top) {
        println!("  {:<24} score {:.3}", r.name, r.score);
    }
    Ok(())
}

fn cmd_localize(rest: &[String]) -> Result<(), String> {
    use pfdbg_emu::{apply_static, injectable_nets, lockstep, Fault};
    use pfdbg_netlist::truth::gates;

    let (name, nw) = load_design(rest)?;
    let cycles = flag_usize(rest, "--cycles", 256)?;
    let inst = instrument(&nw, &icfg(rest)?);
    let clean = inst.network.clone();

    // Pick (or accept) a victim net and break it.
    let victim = match flag(rest, "--bug") {
        Some(v) => v,
        None => {
            let nets = injectable_nets(&clean);
            if nets.is_empty() {
                return Err("design has no injectable nets".into());
            }
            clean.node(nets[nets.len() / 2]).name.clone()
        }
    };
    let victim_id = clean.find(&victim).ok_or_else(|| format!("no net {victim}"))?;
    let arity = clean.node(victim_id).fanins.len();
    let table = match arity {
        1 => gates::not1(),
        2 => gates::nand2(),
        n => return Err(format!("{victim} has arity {n}; pick a 1- or 2-input gate")),
    };
    let buggy = apply_static(&clean, &Fault::WrongGate { net: victim.clone(), table })?;
    println!("injected a WrongGate bug at {victim} in {name}");

    let report = lockstep(&clean, &buggy, cycles, 7)?;
    let Some((cycle, output)) = report.first_divergence else {
        println!("stimulus never excites the bug; try more --cycles");
        return Ok(());
    };
    println!("output {output} diverges first at cycle {cycle}; localizing...");

    let mut session = DebugSession::new(inst, None);
    let loc = pfdbg_core::localize(&mut session, &clean, &buggy, &output, cycles, 7)?;
    for (sig, bad) in &loc.observations {
        println!("  turn: observed {sig:<20} -> {}", if *bad { "MISMATCH" } else { "ok" });
    }
    println!(
        "suspect: {} ({} turns, 0 recompiles){}",
        loc.suspect,
        loc.turns_used,
        if loc.suspect == victim { "  [exact hit]" } else { "" }
    );
    Ok(())
}

fn cmd_scrub(rest: &[String]) -> Result<(), String> {
    use pfdbg_pconf::{ScrubPolicy, Scrubber};

    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let turns = flag_usize(rest, "--turns", 50)?;
    let scrub_every = flag_usize(rest, "--scrub-every", 5)?.max(1);
    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    let cfg = OfflineConfig { k, ..Default::default() };
    let (scg, layout, icap) = match store_from_flags(rest)? {
        Some(store) => {
            let (d, _) = store.offline_cached(&inst, &cfg)?;
            (d.scg, d.layout, d.icap)
        }
        None => {
            let off = offline(&inst, &cfg)?;
            let scg = off.scg.ok_or("offline flow produced no SCG")?;
            let layout = off.layout.ok_or("offline flow produced no layout")?;
            (scg, layout, off.icap)
        }
    };

    let (fault, policy) = chaos_from_flags(rest)?;
    // A scrub demo with nothing to scrub is pointless: default the
    // upset rate up when neither the flag nor the environment set one.
    let seu = seu_from_flags(rest)?.unwrap_or(pfdbg_emu::SeuConfig {
        rate: 0.02,
        burst: 2,
        seed: 0x5EED_05E0,
    });
    let n_params = inst.annotations.len();
    let mem = pfdbg_pconf::MemoryIcap::new(scg.generalized().base.clone(), layout.frame_bits);
    let seu_ch = pfdbg_emu::SeuIcap::new(mem, seu);
    let channel: Box<dyn pfdbg_pconf::IcapChannel> = match fault {
        Some(f) => Box::new(pfdbg_emu::FaultyIcap::new(seu_ch, f)),
        None => Box::new(seu_ch),
    };
    let mut online = OnlineReconfigurator::with_channel(scg, layout, icap, channel, policy);
    let mut scrubber = Scrubber::new(ScrubPolicy { commit: policy, ..ScrubPolicy::default() });

    println!(
        "scrub demo on {name}: {turns} turns, SEU rate {} (burst {}, seed {:#x}), \
         scrub every {scrub_every} turns",
        seu.rate, seu.burst, seu.seed
    );
    let mut rollbacks = 0usize;
    for t in 0..turns {
        // Walk a deterministic parameter schedule: toggle one select
        // bit per turn, like an engineer cycling through signals.
        let mut params = online.params().clone();
        if n_params > 0 {
            let bit = t % n_params;
            params.set(bit, !params.get(bit));
        }
        online.tick();
        if online.try_apply(&params).is_err() {
            rollbacks += 1;
        }
        if (t + 1) % scrub_every == 0 {
            let r = online.scrub(&mut scrubber)?;
            if r.upset_frames > 0 {
                println!(
                    "  turn {:>4}: {} upset frames ({} bits) — {} repaired, {} quarantined",
                    t + 1,
                    r.upset_frames,
                    r.upset_bits,
                    r.repaired_frames,
                    r.quarantined_frames
                );
            }
        }
    }
    let _ = online.scrub(&mut scrubber)?;
    let totals = scrubber.totals();
    println!(
        "scrubbed: {} passes, {} upset frames ({} bits), {} repaired, {} quarantined, {} rollbacks",
        totals.passes,
        totals.upset_frames,
        totals.upset_bits,
        totals.repaired_frames,
        scrubber.quarantined().len(),
        rollbacks
    );
    println!("health: {}", scrubber.health().as_str());
    let undetected = online.undetected_divergence(&scrubber);
    if undetected.is_empty() {
        println!("undetected divergence: none — device matches the PConf golden oracle");
        Ok(())
    } else {
        Err(format!("undetected divergence in frames {undetected:?}"))
    }
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    use pfdbg_serve::session::Engine;
    use pfdbg_serve::{FleetOptions, Server, ServerConfig, SessionManager};
    use std::sync::Arc;

    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    let cfg = OfflineConfig { k, ..Default::default() };
    let (scg, layout, icap) = match store_from_flags(rest)? {
        Some(store) => {
            let (d, outcome) = store.offline_cached(&inst, &cfg)?;
            pfdbg_obs::diag(match outcome {
                CacheOutcome::Hit => "artifact store: hit (offline flow skipped)",
                CacheOutcome::Miss => "artifact store: miss (compiled and stored)",
            });
            (d.scg, d.layout, d.icap)
        }
        None => {
            let off = offline(&inst, &cfg)?;
            let scg = off.scg.ok_or("offline flow produced no SCG")?;
            let layout = off.layout.ok_or("offline flow produced no layout")?;
            (scg, layout, off.icap)
        }
    };

    let n_params = inst.annotations.len();
    let workers = flag_usize(rest, "--workers", 8)?;
    let cache = flag_usize(rest, "--cache", 64)?;
    let addr = match (flag(rest, "--addr"), flag(rest, "--port")) {
        (Some(a), _) => a,
        (None, Some(p)) => format!("127.0.0.1:{p}"),
        (None, None) => "127.0.0.1:0".into(),
    };
    let (fault, policy) = chaos_from_flags(rest)?;
    let seu = seu_from_flags(rest)?;
    let scrub_interval_ms = flag_f64(rest, "--scrub-interval", 0.0)?;
    // Fleet shape: 0 defers to PFDBG_SHARDS / PFDBG_INBOX_CAP, then the
    // built-in defaults (4 shards, 1024-job inboxes).
    let shards = flag_usize(rest, "--shards", 0)?;
    let inbox_cap = flag_usize(rest, "--inbox-cap", 0)?;
    // Device fleet: `--devices N` serves over N supervised primaries
    // plus `--spares` hot spares (health ladders, watchdogs, and
    // journal-backed failover); without it, one unsupervised device.
    let devices = flag_usize(rest, "--devices", 0)?;
    let spares = flag_usize(rest, "--spares", 1)?;
    let engine = Arc::new(Engine::new(inst, scg, layout, icap));
    let scrub_policy = pfdbg_pconf::ScrubPolicy { commit: policy, ..Default::default() };
    let fleet = FleetOptions { shards, inbox_capacity: inbox_cap };
    let mut manager = if devices > 0 {
        SessionManager::with_devices(
            engine,
            cache,
            fault,
            policy,
            seu,
            scrub_policy,
            fleet,
            pfdbg_serve::DeviceOptions { devices, spares, ..Default::default() },
        )
    } else {
        SessionManager::with_fleet(engine, cache, fault, policy, seu, scrub_policy, fleet)
    };
    if let Some(dir) = flag(rest, "--journal-dir") {
        std::fs::create_dir_all(&dir).map_err(|e| format!("{dir}: {e}"))?;
        manager.set_journal_dir(dir.clone().into());
        // Record the design's provenance so the journals are
        // self-contained (replayable by `pfdbg replay` offline). A
        // design loaded from a file stays replayable as long as the
        // file does.
        let arg = rest.first().expect("load_design checked the design arg");
        manager.set_journal_design(design_spec_of(arg)?, icfg(rest)?.coverage, k);
        println!("pfdbg serve: journaling sessions to {dir}");
    }
    let n_shards = manager.shard_count();
    let inbox_capacity = manager.inbox_capacity();
    let handle = Server::start(
        manager,
        ServerConfig {
            addr,
            workers,
            cache_capacity: cache,
            scrub_interval_ms,
            ..ServerConfig::default()
        },
    )?;
    let local = handle.local_addr();
    let (n_devices, n_primaries) = handle.sessions().device_counts();
    let fleet_note = if n_devices > 1 {
        format!(", {n_primaries} devices + {} spares", n_devices - n_primaries)
    } else {
        String::new()
    };
    println!(
        "pfdbg serve: {name} ({n_params} params) on {local}, {workers} io threads, \
         {n_shards} shards (inbox {inbox_capacity}){fleet_note}"
    );
    println!("stop with: pfdbg client {local} --shutdown");
    if let Some(path) = flag(rest, "--port-file") {
        std::fs::write(&path, format!("{}\n", local.port())).map_err(|e| format!("{path}: {e}"))?;
    }
    handle.wait();
    println!("pfdbg serve: stopped");
    Ok(())
}

/// Map a design argument to a journal [`DesignSpec`]. `gen:SEED` is a
/// canonical small synthetic design (record/replay only); `@name` is a
/// suite benchmark; anything else is a netlist file path.
fn design_spec_of(arg: &str) -> Result<pfdbg_replay::DesignSpec, String> {
    use pfdbg_replay::DesignSpec;
    if let Some(seed) = arg.strip_prefix("gen:") {
        let seed: u64 =
            seed.parse().map_err(|_| format!("gen: expects a numeric seed, got {seed:?}"))?;
        return Ok(DesignSpec::Generated {
            n_inputs: 6,
            n_outputs: 4,
            n_gates: 24,
            depth: 4,
            n_latches: 2,
            seed,
        });
    }
    if let Some(name) = arg.strip_prefix('@') {
        return Ok(DesignSpec::Bench { name: name.to_string() });
    }
    Ok(DesignSpec::File { path: arg.to_string() })
}

/// splitmix64 step — the CLI's deterministic parameter-vector source,
/// so `record --seed S` always journals the same session.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cmd_record(rest: &[String]) -> Result<(), String> {
    use pfdbg_replay::{ChaosSpec, Recorder, SessionMeta};

    let arg = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a design file, @benchmark, or gen:SEED")?;
    let out = flag(rest, "--out").ok_or("--out expects a journal path (.pfdj)")?;
    let turns = flag_usize(rest, "--turns", 8)?;
    let scrub_every = flag_usize(rest, "--scrub-every", 0)?;
    let seed = flag_usize(rest, "--seed", 0x00C0_FFEE)? as u64;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let icfg = icfg(rest)?;
    let (fault, policy) = chaos_from_flags(rest)?;
    let seu = seu_from_flags(rest)?;
    let scrub_policy = pfdbg_pconf::ScrubPolicy { commit: policy, ..Default::default() };
    let meta = SessionMeta {
        session: flag(rest, "--session").unwrap_or_else(|| "cli".into()),
        derive_seeds: false,
        design: design_spec_of(arg)?,
        ports: icfg.n_ports,
        coverage: icfg.coverage,
        k,
        n_params: 0, // the recorder fills this from the built design
        chaos: ChaosSpec::from_parts(fault, seu, &policy, &scrub_policy),
        threads: 0,
        note: format!("pfdbg record {arg} --seed {seed}"),
    };
    let mut rec = Recorder::create(&meta, std::path::Path::new(&out))?;
    let n = rec.n_params();
    let mut state = seed;
    for t in 0..turns {
        if scrub_every > 0 && t % scrub_every == scrub_every - 1 {
            let s = rec.scrub()?;
            println!(
                "scrub:   {} frames checked, {} upset, {} repaired",
                s.frames_checked, s.upset_frames, s.repaired_frames
            );
        }
        let mut params = pfdbg_util::BitVec::zeros(n);
        for i in 0..n {
            if splitmix64(&mut state) & 1 == 1 {
                params.set(i, true);
            }
        }
        let f = rec.select(&params)?;
        println!(
            "turn {t:3}: {:?} bits_changed={} frames_changed={} retries={} seu_flips={}",
            f.outcome, f.bits_changed, f.frames_changed, f.retries, f.seu_flips
        );
    }
    rec.finish()?;
    println!("recorded {turns} turns ({n} params) to {out}");
    Ok(())
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let path =
        rest.first().filter(|a| !a.starts_with("--")).ok_or("expected a journal path (.pfdj)")?;
    let threads = match flag(rest, "--at-threads") {
        None => None,
        Some(v) => {
            Some(v.parse().map_err(|_| format!("--at-threads expects a number, got {v:?}"))?)
        }
    };
    let report = pfdbg_replay::verify_path(std::path::Path::new(path), threads)?;
    let torn = if report.torn { " (torn tail skipped)" } else { "" };
    println!(
        "replay {path}: session {:?}, {} records, {} turns, {} scrubs{torn}",
        report.session, report.records, report.turns, report.scrubs
    );
    match &report.divergence {
        None => {
            println!("bit-identical");
            Ok(())
        }
        Some(d) => Err(format!("replay diverged: {d}")),
    }
}

fn cmd_fuzz(rest: &[String]) -> Result<(), String> {
    let cases = flag_usize(rest, "--cases", 64)?;
    let seed = flag_usize(rest, "--seed", 0xD1FF)? as u64;
    let corpus = flag(rest, "--corpus-dir");
    if let Some(dir) = &corpus {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    let pairs = pfdbg_replay::default_pairs();
    let report = pfdbg_replay::run_suite(
        cases,
        seed,
        &pairs,
        corpus.as_deref().map(std::path::Path::new),
        |c| match &c.divergence {
            None => println!("case {:#06x} {:24} {} ops: ok", c.seed, c.pair, c.ops),
            Some(d) => {
                println!("case {:#06x} {:24} {} ops: DIVERGED at {}", c.seed, c.pair, c.ops, d);
                if let Some(p) = &c.corpus_path {
                    println!("  minimal journal: {}", p.display());
                }
            }
        },
    )?;
    let diverged = report.divergences();
    println!("fuzz: {} cases, {diverged} divergences", report.cases.len());
    if diverged > 0 {
        return Err(format!("{diverged} differential divergences (see corpus)"));
    }
    Ok(())
}

fn cmd_client(rest: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let addr = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a server address (host:port)")?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = BufReader::new(stream);

    // One request line out, one reply line in; prints the reply and
    // reports whether the server said ok.
    let mut roundtrip = |line: &str| -> Result<bool, String> {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if reply.is_empty() {
            return Err("server closed the connection".into());
        }
        print!("{reply}");
        let events = pfdbg_obs::parse_jsonl(&reply).map_err(|e| format!("bad reply: {e}"))?;
        Ok(events.first().and_then(|ev| ev.fields.get("ok"))
            == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)))
    };

    let mut requests: Vec<String> = Vec::new();
    if let Some(r) = flag(rest, "--request") {
        requests.push(r);
    }
    if rest.iter().any(|a| a == "--shutdown") {
        requests.push("{\"op\":\"shutdown\"}".into());
    }
    if requests.is_empty() {
        // Interactive mode: JSONL requests on stdin, replies on stdout.
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("stdin: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            roundtrip(&line)?;
        }
        return Ok(());
    }
    let mut all_ok = true;
    for r in &requests {
        all_ok &= roundtrip(r)?;
    }
    if all_ok {
        Ok(())
    } else {
        Err("server replied with an error".into())
    }
}

/// `pfdbg top` — a live fleet dashboard over the `metrics` verb: polls
/// the server, parses the embedded registry JSONL, and renders fleet
/// counters, latency percentiles, SLO burn, and a per-session table
/// (with turns/s derived from successive polls). `--iters N` bounds the
/// number of refreshes (for scripts); `--no-clear` appends frames
/// instead of redrawing in place.
fn cmd_top(rest: &[String]) -> Result<(), String> {
    use std::collections::BTreeMap;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let addr = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a server address (host:port)")?;
    let interval_ms = flag_f64(rest, "--interval", 1000.0)?;
    let iters = flag_usize(rest, "--iters", 0)?;
    let clear = !rest.iter().any(|a| a == "--no-clear");

    let stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = BufReader::new(stream);

    // Previous poll's per-session turn counters, for turns/s.
    let mut prev: Option<(std::time::Instant, BTreeMap<String, f64>)> = None;
    let mut round = 0usize;
    loop {
        writer
            .write_all(b"{\"op\":\"metrics\"}\n")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if reply.is_empty() {
            return Err("server closed the connection".into());
        }
        let events = pfdbg_obs::parse_jsonl(&reply).map_err(|e| format!("bad reply: {e}"))?;
        let ev = events.first().ok_or("empty reply")?;
        if ev.fields.get("ok") != Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)) {
            return Err(format!("server error: {}", ev.str("error").unwrap_or("unknown")));
        }
        let body = ev.str("metrics").ok_or("reply lacks a metrics field")?;
        let registry = pfdbg_obs::parse_jsonl(body).map_err(|e| format!("bad registry: {e}"))?;
        let now = std::time::Instant::now();
        let elapsed =
            prev.as_ref().map(|(t0, counts)| (now.duration_since(*t0).as_secs_f64(), counts));
        render_top(addr, &registry, elapsed, clear);

        let mut counts = BTreeMap::new();
        for e in &registry {
            if e.kind() == "session" {
                if let (Some(name), Some(turns)) = (e.str("name"), e.num("turns")) {
                    counts.insert(name.to_string(), turns);
                }
            }
        }
        prev = Some((now, counts));
        round += 1;
        if iters != 0 && round >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64((interval_ms / 1e3).max(0.0)));
    }
}

/// One `pfdbg top` frame from a parsed registry snapshot.
fn render_top(
    addr: &str,
    registry: &[pfdbg_obs::jsonl::Event],
    prev: Option<(f64, &std::collections::BTreeMap<String, f64>)>,
    clear: bool,
) {
    let find = |kind: &str, name: &str| {
        registry.iter().find(|e| e.kind() == kind && e.str("name") == Some(name))
    };
    let counter = |name: &str| find("counter", name).and_then(|e| e.num("value")).unwrap_or(0.0);
    let p99 = |name: &str| find("hist", name).and_then(|e| e.num("p99_us")).unwrap_or(0.0);
    let slo = |name: &str| {
        find("slo", name)
            .map_or((0.0, 0.0), |e| (e.num("burned").unwrap_or(0.0), e.num("total").unwrap_or(0.0)))
    };

    if clear {
        print!("\x1b[2J\x1b[H");
    }
    let sessions: Vec<_> = registry.iter().filter(|e| e.kind() == "session").collect();
    println!("pfdbg top — {addr} ({} sessions)", sessions.len());
    let hits = counter("serve.cache_hits");
    let misses = counter("serve.cache_misses");
    let hit_pct = if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 };
    println!(
        "fleet  {:>8} req  {:>8} turns  cache {hit_pct:5.1}%  retries {}  rollbacks {}",
        counter("serve.requests"),
        counter("serve.turns"),
        counter("serve.retries"),
        counter("serve.rollbacks"),
    );
    println!(
        "lat    specialize p99 {:9.1} µs  turn p99 {:9.1} µs  request p99 {:9.1} µs",
        p99("scg.specialize_us"),
        p99("serve.turn_us"),
        p99("serve.request_us"),
    );
    println!(
        "load   shed {:>8}  overloaded {:>8}  panics {:>4}  inbox wait p99 {:9.1} µs",
        counter("serve.shed_total"),
        counter("serve.overloaded_replies"),
        counter("serve.handler_panics"),
        p99("serve.inbox_wait_us"),
    );
    let (sb, st) = slo("slo.specialize_us");
    let (tb, tt) = slo("slo.turn_us");
    let (cb, ct) = slo("slo.scrub_interval_us");
    let (ib, it) = slo("slo.inbox_wait_us");
    println!(
        "slo    specialize {sb:.0}/{st:.0} burned  turn {tb:.0}/{tt:.0}  scrub {cb:.0}/{ct:.0}  \
         inbox {ib:.0}/{it:.0}"
    );
    println!(
        "scrub  {} passes  {} frames repaired  {} quarantined",
        counter("scrub.passes"),
        counter("scrub.repaired_frames"),
        counter("scrub.quarantined_frames"),
    );
    let devices: Vec<_> = registry.iter().filter(|e| e.kind() == "device").collect();
    if !devices.is_empty() {
        println!(
            "devs   migrations {:.0} ({:.1} ms p99)  watchdog trips {:.0}  failed {:.0}  \
             sessions migrated {:.0} / lost {:.0}",
            counter("serve.migrations"),
            // MIGRATION_MS records milliseconds, so the registry's
            // "p99_us" field is already in ms here.
            p99("serve.migration_ms"),
            counter("serve.watchdog_trips"),
            counter("serve.device_failures"),
            counter("serve.sessions_migrated"),
            counter("serve.sessions_lost"),
        );
        println!();
        println!(
            "{:<8} {:<8} {:<8} {:<12} {:>8} {:>10} {:>6}",
            "DEVICE", "ROLE", "MODE", "HEALTH", "SESSIONS", "WRITES", "DRAIN"
        );
        for d in &devices {
            println!(
                "{:<8} {:<8} {:<8} {:<12} {:>8} {:>10} {:>6}",
                d.str("name").unwrap_or("?"),
                d.str("role").unwrap_or("?"),
                d.str("mode").unwrap_or("?"),
                d.str("health").unwrap_or("?"),
                d.num("sessions").unwrap_or(0.0),
                d.num("writes").unwrap_or(0.0),
                if d.fields.get("draining") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)) {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:<10} {:>6} {:>7} {:>6} {:>7}",
        "SESSION", "TURNS", "TURNS/S", "HEALTH", "RESYNC", "SCRUBS", "QUAR", "EVENTS"
    );
    for s in &sessions {
        let name = s.str("name").unwrap_or("?");
        if s.fields.get("busy") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)) {
            println!("{name:<16} (busy — mid-commit, skipped this poll)");
            continue;
        }
        let turns = s.num("turns").unwrap_or(0.0);
        let rate = prev
            .and_then(|(dt, counts)| {
                let before = counts.get(name)?;
                (dt > 0.0).then(|| (turns - before).max(0.0) / dt)
            })
            .map_or("-".to_string(), |r| format!("{r:.1}"));
        println!(
            "{name:<16} {turns:>8} {rate:>8} {:<10} {:>6} {:>7} {:>6} {:>7}",
            s.str("health").unwrap_or("?"),
            if s.fields.get("needs_resync") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)) {
                "yes"
            } else {
                "no"
            },
            s.num("scrubs").unwrap_or(0.0),
            s.num("quarantined").unwrap_or(0.0),
            s.num("flight_events").unwrap_or(0.0),
        );
    }
}
