//! Reconfiguration-port timing model (HWICAP).
//!
//! The paper's run-time analysis (§V.C.2) compares three latencies:
//!
//! * a **full reconfiguration** — shifting the entire bitstream through
//!   the configuration port: 176 ms on the Xilinx Virtex-5 it assumes,
//! * a **partial reconfiguration** — only the frames whose bits changed,
//! * the **PConf evaluation** by the SCG (measured, not modeled — see
//!   `pfdbg-pconf`), bounded at 50 µs in the paper.
//!
//! We model the port as fixed per-frame transfer time plus a per-command
//! overhead, calibrated so a Virtex-5-sized device full-reconfigures in
//! 176 ms.

use std::time::Duration;

/// Virtex-5 frame size: 41 words × 32 bits.
pub const VIRTEX5_FRAME_BITS: usize = 41 * 32;

/// Configuration size of a Virtex-5 of the class the paper assumes
/// (~23k frames ≈ 3.8 MB, an XC5VLX110T-sized part). Used to calibrate
/// the port so a *full* reconfiguration takes the paper's 176 ms even
/// when the design under test occupies only a region of the device.
pub const VIRTEX5_CONFIG_BITS: usize = 23_000 * VIRTEX5_FRAME_BITS;

/// An ICAP-like configuration port.
#[derive(Debug, Clone, Copy)]
pub struct IcapModel {
    /// Sustained throughput of the port in bits per second.
    pub bits_per_second: f64,
    /// Fixed overhead per reconfiguration command (setup, sync words,
    /// CRC).
    pub command_overhead: Duration,
    /// Per-frame address/command overhead.
    pub per_frame_overhead: Duration,
}

impl IcapModel {
    /// A Virtex-5-class port: ICAP at 32 bit × 100 MHz = 3.2 Gbit/s.
    pub fn virtex5() -> Self {
        IcapModel {
            bits_per_second: 3.2e9,
            command_overhead: Duration::from_micros(20),
            per_frame_overhead: Duration::from_nanos(420),
        }
    }

    /// Time to shift `n_bits` through the port (no command overheads).
    fn transfer(&self, n_bits: usize) -> Duration {
        Duration::from_secs_f64(n_bits as f64 / self.bits_per_second)
    }

    /// Full-device reconfiguration time for a bitstream of `n_bits`
    /// organized in frames of `frame_bits`.
    pub fn full_reconfig(&self, n_bits: usize, frame_bits: usize) -> Duration {
        let frames = n_bits.div_ceil(frame_bits.max(1));
        self.command_overhead + self.per_frame_overhead * frames as u32 + self.transfer(n_bits)
    }

    /// Partial reconfiguration of `n_frames` frames.
    pub fn partial_reconfig(&self, n_frames: usize, frame_bits: usize) -> Duration {
        self.command_overhead
            + self.per_frame_overhead * n_frames as u32
            + self.transfer(n_frames * frame_bits)
    }

    /// Number of bits a Virtex-5-class device needs for its full stream
    /// to take the paper's 176 ms on this port (useful to sanity-check
    /// model calibration: vs. the real XC5VLX110T's ~3.9 MB bitstream the
    /// figure implies a slower effective throughput — the paper quotes
    /// the conservative end-to-end HWICAP rate, so calibrate with
    /// [`IcapModel::calibrated_to`] when matching the paper).
    pub fn bits_for(&self, t: Duration) -> usize {
        (t.as_secs_f64() * self.bits_per_second) as usize
    }

    /// A model rescaled so that a device with `n_bits` of configuration
    /// takes exactly `target` for a full reconfiguration (frame overheads
    /// folded into throughput). This mirrors the paper's calibration
    /// point: 176 ms for its Virtex-5.
    pub fn calibrated_to(n_bits: usize, target: Duration) -> Self {
        IcapModel {
            bits_per_second: n_bits as f64 / target.as_secs_f64(),
            command_overhead: Duration::ZERO,
            per_frame_overhead: Duration::ZERO,
        }
    }
}

/// The paper's amortization analysis: with the design clocked at
/// `design_mhz` and a debug loop of `loop_ticks` cycles, how many
/// debugging turns does one specialization of `specialize` latency
/// correspond to? (§V.C.2 computes 50 µs ≙ 5000 turns at 400 MHz and 4
/// ticks per turn.)
pub fn turns_equivalent(specialize: Duration, design_mhz: f64, loop_ticks: u32) -> f64 {
    let tick = 1.0 / (design_mhz * 1e6);
    specialize.as_secs_f64() / (tick * loop_ticks as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex5_full_reconfig_order_of_magnitude() {
        // A Virtex-5-sized stream on a calibrated port hits 176 ms
        // exactly; the raw 3.2 Gb/s port does it faster (the paper quotes
        // end-to-end driver throughput).
        let icap = IcapModel::calibrated_to(30_000_000, Duration::from_millis(176));
        let t = icap.full_reconfig(30_000_000, VIRTEX5_FRAME_BITS);
        let ms = t.as_secs_f64() * 1e3;
        assert!((ms - 176.0).abs() < 1.0, "got {ms} ms");
    }

    #[test]
    fn partial_beats_full_by_orders_of_magnitude() {
        let icap = IcapModel::calibrated_to(30_000_000, Duration::from_millis(176));
        let full = icap.full_reconfig(30_000_000, VIRTEX5_FRAME_BITS);
        let partial = icap.partial_reconfig(10, VIRTEX5_FRAME_BITS);
        let ratio = full.as_secs_f64() / partial.as_secs_f64();
        assert!(ratio > 1000.0, "partial only {ratio}x faster");
    }

    #[test]
    fn per_frame_overhead_accumulates() {
        let icap = IcapModel::virtex5();
        let few = icap.partial_reconfig(1, VIRTEX5_FRAME_BITS);
        let many = icap.partial_reconfig(100, VIRTEX5_FRAME_BITS);
        assert!(many > few);
        assert!(many < icap.full_reconfig(30_000_000, VIRTEX5_FRAME_BITS));
    }

    #[test]
    fn paper_amortization_point() {
        // 50 µs at 400 MHz, 4 ticks/turn -> 5000 turns.
        let turns = turns_equivalent(Duration::from_micros(50), 400.0, 4);
        assert!((turns - 5000.0).abs() < 1e-6, "got {turns}");
    }
}
