//! `pfdbg-replay` — session record/replay journals and differential
//! turn-sequence fuzzing.
//!
//! The debug flow of this repository is deterministic by construction:
//! seeded fault and SEU streams, sharded-but-ordered SCG evaluation,
//! and transactional frame commits. This crate turns that property
//! into three tools:
//!
//! 1. **Recording** ([`Recorder`], [`JournalWriter`]): every turn's
//!    inputs and observable outputs are appended to a checksummed
//!    `PFDJ` journal (framed by [`pfdbg_store::journal`]) that
//!    tolerates torn tails from crashes.
//! 2. **Replay verification** ([`verify_path`], [`verify_records`]):
//!    a journal is re-driven against a freshly rebuilt session and
//!    every reply is diffed bit-for-bit; the first divergent turn is
//!    reported with a structured [`Divergence`]. The serve layer uses
//!    the same machinery for crash-consistent session restore.
//! 3. **Differential fuzzing** ([`fuzz::run_suite`]): seeded random
//!    turn sequences drive pairs of sessions that must agree —
//!    faulty-vs-golden-oracle, serial-vs-parallel SCG,
//!    scrubbed-vs-unscrubbed at 0% SEU — and any divergence is shrunk
//!    to a minimal journal for the regression corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod fuzz;
pub mod journal;
pub mod record;
pub mod verify;

pub use driver::{bitstream_crc, build_design, session_seed, BuiltDesign, OnlineDriver, Recorder};
pub use fuzz::{
    default_pairs, run_case, run_suite, verify_corpus, CaseReport, FuzzOp, PairKind, SuiteReport,
};
pub use journal::{meta_of, read_records, JournalWriter};
pub use record::{
    ChaosSpec, DesignSpec, JournalRecord, ScrubFacts, SelectFacts, SelectOutcome, SessionMeta,
};
pub use verify::{verify_path, verify_records, verify_with_driver, Divergence, VerifyReport};
