//! Strongly typed `u32` index newtypes and dense maps keyed by them.
//!
//! CAD data structures are graphs whose nodes are referred to by index.
//! Raw `usize` indices make it far too easy to index the wrong arena
//! (a net id into the node table, a routing-node id into the block table,
//! …). Every arena in this workspace therefore uses its own id type,
//! declared with [`crate::define_id!`], and its own [`IdVec`] storage.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// Trait implemented by all id newtypes produced by [`crate::define_id!`].
pub trait EntityId: Copy + Eq + Hash + Ord {
    /// Construct from a raw index. Panics if `idx` overflows `u32`.
    fn new(idx: usize) -> Self;
    /// The raw index.
    fn index(self) -> usize;
}

/// Declare a strongly typed `u32` id.
///
/// ```
/// pfdbg_util::define_id!(
///     /// A net in a netlist.
///     pub struct NetId
/// );
/// let n = <NetId as pfdbg_util::id::EntityId>::new(7);
/// assert_eq!(pfdbg_util::id::EntityId::index(n), 7);
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* pub struct $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $crate::id::EntityId for $name {
            #[inline]
            fn new(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize, "id overflow");
                $name(idx as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

/// A dense vector keyed by an [`EntityId`] instead of `usize`.
///
/// This is a thin wrapper over `Vec<T>` that only accepts the matching id
/// type at its indexing sites, making cross-arena indexing a type error.
#[derive(Clone, PartialEq, Eq)]
pub struct IdVec<I: EntityId, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: EntityId, T> IdVec<I, T> {
    /// An empty map.
    pub fn new() -> Self {
        IdVec { raw: Vec::new(), _marker: PhantomData }
    }

    /// An empty map with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        IdVec { raw: Vec::with_capacity(cap), _marker: PhantomData }
    }

    /// A map of `n` copies of `value`.
    pub fn filled(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        IdVec { raw: vec![value; n], _marker: PhantomData }
    }

    /// Build from a raw vector; index `i` becomes id `I::new(i)`.
    pub fn from_vec(raw: Vec<T>) -> Self {
        IdVec { raw, _marker: PhantomData }
    }

    /// Append a value and return its id.
    #[inline]
    pub fn push(&mut self, value: T) -> I {
        let id = I::new(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The id the *next* `push` will return.
    #[inline]
    pub fn next_id(&self) -> I {
        I::new(self.raw.len())
    }

    /// Whether `id` is in bounds.
    #[inline]
    pub fn contains_id(&self, id: I) -> bool {
        id.index() < self.raw.len()
    }

    /// Iterate over `(id, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, v)| (I::new(i), v))
    }

    /// Iterate over `(id, &mut value)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.raw.iter_mut().enumerate().map(|(i, v)| (I::new(i), v))
    }

    /// Iterate over all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> {
        (0..self.raw.len()).map(I::new)
    }

    /// Iterate over values.
    pub fn values(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterate over values mutably.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.raw
    }

    /// Get without panicking.
    #[inline]
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.index())
    }

    /// Get mutably without panicking.
    #[inline]
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.raw.get_mut(id.index())
    }

    /// Clear all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.raw.clear();
    }

    /// Grow to `n` entries, filling new slots with `value`.
    pub fn resize(&mut self, n: usize, value: T)
    where
        T: Clone,
    {
        self.raw.resize(n, value);
    }
}

impl<I: EntityId, T> Default for IdVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: EntityId, T> std::ops::Index<I> for IdVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.raw[id.index()]
    }
}

impl<I: EntityId, T> std::ops::IndexMut<I> for IdVec<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.index()]
    }
}

impl<I: EntityId, T: fmt::Debug> fmt::Debug for IdVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.raw.iter().enumerate()).finish()
    }
}

impl<I: EntityId, T> FromIterator<T> for IdVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IdVec { raw: iter.into_iter().collect(), _marker: PhantomData }
    }
}

impl<I: EntityId, T> IntoIterator for IdVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_id!(
        /// Test id.
        pub struct TestId
    );

    #[test]
    fn push_and_index_round_trip() {
        let mut v: IdVec<TestId, &str> = IdVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, TestId(0));
        assert_eq!(b, TestId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn next_id_matches_push() {
        let mut v: IdVec<TestId, u32> = IdVec::new();
        let predicted = v.next_id();
        let actual = v.push(42);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let v: IdVec<TestId, u32> = [10, 20, 30].into_iter().collect();
        let pairs: Vec<_> = v.iter().map(|(i, &x)| (i.index(), x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let v: IdVec<TestId, u32> = IdVec::new();
        assert!(v.get(TestId(0)).is_none());
        assert!(!v.contains_id(TestId(0)));
    }

    #[test]
    fn filled_and_resize() {
        let mut v: IdVec<TestId, u8> = IdVec::filled(7, 3);
        assert_eq!(v.len(), 3);
        assert!(v.values().all(|&x| x == 7));
        v.resize(5, 9);
        assert_eq!(v[TestId(4)], 9);
    }

    #[test]
    fn display_and_debug_formats() {
        let id = TestId(5);
        assert_eq!(format!("{id}"), "5");
        assert_eq!(format!("{id:?}"), "TestId(5)");
    }
}
