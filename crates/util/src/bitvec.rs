//! A compact bit vector.
//!
//! Used for LUT truth tables, configuration frames, signal-selection masks
//! and visited sets. Bits are stored LSB-first in `u64` words.

/// A growable, compact vector of bits.
#[derive(PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl Clone for BitVec {
    fn clone(&self) -> Self {
        BitVec { words: self.words.clone(), len: self.len }
    }

    /// Reuses `self`'s word buffer — cloning into an equally-sized
    /// vector allocates nothing, which the per-turn hot paths rely on.
    fn clone_from(&mut self, other: &Self) {
        self.words.clone_from(&other.words);
        self.len = other.len;
    }
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        BitVec { words: Vec::new(), len: 0 }
    }

    /// `n` bits, all zero.
    pub fn zeros(n: usize) -> Self {
        BitVec { words: vec![0; n.div_ceil(64)], len: n }
    }

    /// `n` bits, all one.
    pub fn ones(n: usize) -> Self {
        let mut v = BitVec { words: vec![!0u64; n.div_ceil(64)], len: n };
        v.mask_tail();
        v
    }

    /// Build from an iterator of bools.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = BitVec::new();
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Rebuild from backing words (the inverse of [`BitVec::words`],
    /// for deserialization). Fails if the word count doesn't match the
    /// length or the tail beyond `len` holds stray set bits — both are
    /// signs of a corrupted source.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!("{} words cannot back {len} bits", words.len()));
        }
        let v = BitVec { words, len };
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = v.words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err("set bits beyond the vector length".into());
                }
            }
        }
        Ok(v)
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a bit.
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Read bit `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flip bit `i`, returning its new value.
    pub fn toggle(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set all bits to zero, keeping the length.
    pub fn clear_bits(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterate over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of all set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place bitwise XOR with `other`. Panics on length mismatch.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise OR with `other`. Panics on length mismatch.
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND with `other`. Panics on length mismatch.
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of positions at which `self` and `other` differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Borrow the backing words (LSB-first). The tail beyond `len` is zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Resize to exactly `n` bits, all zero, reusing the word buffer.
    /// Allocation-free once the buffer has grown to its working size.
    pub fn reset_zeroed(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
        self.len = n;
    }

    /// Overwrite backing word `wi` wholesale. Bits beyond `len` in the
    /// last word are masked off so the all-zero-tail invariant holds.
    #[inline]
    pub fn set_word(&mut self, wi: usize, w: u64) {
        assert!(wi < self.words.len(), "word index {wi} out of bounds");
        self.words[wi] = w;
        if wi == self.words.len() - 1 {
            self.mask_tail();
        }
    }

    /// Copy the `len`-bit field starting at bit `base` into `out` as
    /// LSB-first words (the inverse of [`BitVec::splice_words`]). The
    /// tail of the last output word beyond `len` is zero. `out` is
    /// cleared first so a caller can reuse one buffer across calls.
    pub fn extract_words(&self, base: usize, len: usize, out: &mut Vec<u64>) {
        out.clear();
        if len == 0 {
            return;
        }
        let n_words = len.div_ceil(64);
        out.reserve(n_words);
        let first = base / 64;
        let off = base % 64;
        for j in 0..n_words {
            let w = if off == 0 {
                self.words.get(first + j).copied().unwrap_or(0)
            } else {
                let lo = self.words.get(first + j).copied().unwrap_or(0) >> off;
                let hi = self.words.get(first + j + 1).copied().unwrap_or(0) << (64 - off);
                lo | hi
            };
            out.push(w);
        }
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Overwrite the `n`-bit field (`1..=64`) at bit `pos` with the low
    /// `n` bits of `val`. The field may straddle a word boundary; bits
    /// beyond `len` are dropped.
    fn store_bits(&mut self, pos: usize, n: usize, val: u64) {
        debug_assert!((1..=64).contains(&n));
        let mask = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
        let val = val & mask;
        let wi = pos / 64;
        let off = pos % 64;
        self.words[wi] = (self.words[wi] & !(mask << off)) | (val << off);
        if off + n > 64 {
            let spill = n - (64 - off);
            let smask = (1u64 << spill) - 1;
            if let Some(next) = self.words.get_mut(wi + 1) {
                *next = (*next & !smask) | (val >> (64 - off));
            }
        }
        self.mask_tail();
    }

    /// Overwrite the `len`-bit field starting at bit `base` from
    /// LSB-first `src` words (the inverse of [`BitVec::extract_words`]).
    /// Missing source words are read as zero; bits beyond the vector
    /// length are dropped.
    pub fn splice_words(&mut self, base: usize, len: usize, src: &[u64]) {
        let len = len.min(self.len.saturating_sub(base));
        let mut done = 0;
        while done < len {
            let n = (len - done).min(64);
            let w = src.get(done / 64).copied().unwrap_or(0);
            self.store_bits(base + done, n, w);
            done += n;
        }
    }

    /// Zero any bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn ones_masks_tail_word() {
        let o = BitVec::ones(65);
        // Backing storage must not contain stray set bits beyond len —
        // hamming distances and equality rely on it.
        assert_eq!(o.words()[1], 1);
    }

    #[test]
    fn push_get_set_toggle() {
        let mut v = BitVec::new();
        for i in 0..100 {
            v.push(i % 3 == 0);
        }
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(99));
        v.set(1, true);
        assert!(v.get(1));
        assert!(!v.toggle(1));
        assert!(!v.get(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::zeros(3).get(3);
    }

    #[test]
    fn iter_ones_matches_get() {
        let v: BitVec = (0..200).map(|i| i % 7 == 0).collect();
        let ones: Vec<usize> = v.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn hamming_distance_counts_diffs() {
        let a: BitVec = (0..150).map(|i| i % 2 == 0).collect();
        let mut b = a.clone();
        assert_eq!(a.hamming_distance(&b), 0);
        b.set(0, false);
        b.set(149, true);
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn clone_from_reuses_buffer_and_matches() {
        let a: BitVec = (0..130).map(|i| i % 3 == 0).collect();
        let mut b = BitVec::zeros(130);
        let cap_ptr = b.words().as_ptr();
        b.clone_from(&a);
        assert_eq!(a, b);
        assert_eq!(b.words().as_ptr(), cap_ptr, "clone_from must not reallocate");
    }

    #[test]
    fn reset_zeroed_resizes_and_clears() {
        let mut v: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        v.reset_zeroed(200);
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), 0);
        v.reset_zeroed(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_word_masks_tail() {
        let mut v = BitVec::zeros(70);
        v.set_word(1, !0u64);
        assert_eq!(v.count_ones(), 6);
        assert!(v.get(69));
        v.set_word(0, 0b101);
        assert!(v.get(0) && !v.get(1) && v.get(2));
    }

    /// Reference bit-loop extraction, for differential testing.
    fn extract_ref(v: &BitVec, base: usize, len: usize) -> Vec<u64> {
        let mut out = vec![0u64; len.div_ceil(64)];
        for i in 0..len {
            if base + i < v.len() && v.get(base + i) {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    #[test]
    fn extract_words_matches_bit_loop() {
        let v: BitVec = (0..300).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut out = Vec::new();
        for &(base, len) in &[(0, 64), (0, 300), (1, 64), (63, 65), (64, 130), (250, 80), (5, 0)] {
            v.extract_words(base, len, &mut out);
            assert_eq!(out, extract_ref(&v, base, len), "base={base} len={len}");
        }
    }

    #[test]
    fn splice_words_matches_bit_loop() {
        let src = [0xDEAD_BEEF_CAFE_F00Du64, 0x0123_4567_89AB_CDEF];
        for &(base, len) in &[(0usize, 64usize), (1, 64), (63, 65), (100, 128), (250, 80)] {
            let mut a: BitVec = (0..300).map(|i| i % 3 == 0).collect();
            let mut b = a.clone();
            a.splice_words(base, len, &src);
            for i in 0..len.min(300usize.saturating_sub(base)) {
                let bit = (src.get(i / 64).copied().unwrap_or(0) >> (i % 64)) & 1 == 1;
                b.set(base + i, bit);
            }
            assert_eq!(a, b, "base={base} len={len}");
            // Round trip: extracting the spliced field gives the source back.
            let mut out = Vec::new();
            let eff = len.min(300usize.saturating_sub(base));
            a.extract_words(base, eff, &mut out);
            assert_eq!(out, extract_ref(&a, base, eff));
        }
    }

    #[test]
    fn bitwise_ops() {
        let a: BitVec = [true, true, false, false].into_iter().collect();
        let b: BitVec = [true, false, true, false].into_iter().collect();
        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x, [false, true, true, false].into_iter().collect());
        let mut o = a.clone();
        o.or_with(&b);
        assert_eq!(o, [true, true, true, false].into_iter().collect());
        let mut n = a.clone();
        n.and_with(&b);
        assert_eq!(n, [true, false, false, false].into_iter().collect());
    }
}
