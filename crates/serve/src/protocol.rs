//! The line-delimited JSON wire protocol.
//!
//! One request per line, one reply per line, both in the flat JSONL
//! schema of `pfdbg-obs` (string/number/bool/null values, no nesting).
//! Parameter vectors travel as bit strings (`"0110"`, LSB first —
//! parameter 0 is the first character) since the schema has no arrays.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"open","session":"s1"}
//! {"op":"select","session":"s1","params":"0110"}
//! {"op":"select","session":"s1","signals":"g2,g7","deadline_ms":50}
//! {"op":"health","session":"s1"}
//! {"op":"scrub","session":"s1"}
//! {"op":"close","session":"s1"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"dump","session":"s1"}
//! {"op":"dump"}
//! {"op":"record","session":"s1"}
//! {"op":"replay","path":"s1-0123456789abcdef.pfdj"}
//! {"op":"devices"}
//! {"op":"drain","device":1}
//! {"op":"fail","device":0}
//! {"op":"shutdown"}
//! ```
//!
//! `health` reports a session's scrub status (verdict, upset/repair
//! totals, quarantined frames as a comma-joined index list since the
//! schema has no arrays); `scrub` runs one on-demand scrub pass against
//! the PConf golden oracle and returns its report.
//!
//! `metrics` returns the full always-on telemetry registry — counter,
//! gauge, `hist`, and `slo` lines plus one `session` row per open
//! session — as a multi-line JSONL document embedded in the single
//! `metrics` string field of the (still one-line) reply; the flat
//! schema escapes the inner newlines. `dump` does the same with a
//! session's flight-recorder ring (`flight` events, oldest first) in
//! the `flight` field; with no `session` it returns the most recent
//! *automatic* dump, captured when a turn rolled back or a scrub
//! quarantined a frame.
//!
//! `record` reports (and durably syncs) the journal behind a live
//! session when the server runs with `--journal-dir`; `replay`
//! re-drives a journal file and reports whether it matched
//! bit-for-bit — self-contained journals rebuild their own engine,
//! `External` ones verify against this server's. The replay path is
//! resolved inside the server's `--journal-dir` (use the `file` field
//! the `record` verb returns); absolute paths and `..` are rejected.
//!
//! `devices` reports the supervised device fleet — counts plus one
//! `device` JSONL row per device (mode, health rung, session count) —
//! on servers started with `--devices`; `drain` migrates a device's
//! sessions to a spare while it keeps serving, and `fail` kills the
//! device first, exercising journal-backed failover.
//!
//! Every reply carries `ok` plus the echoed `op` and, when the request
//! had one, its `id`. Failures are `{"ok":false,"error":...}` — a
//! malformed line never kills the connection, let alone the server.

use pfdbg_obs::jsonl::{parse_jsonl, JsonValue};
use pfdbg_util::BitVec;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create a session.
    Open {
        /// Client-chosen session name.
        session: String,
    },
    /// One debugging turn: specialize for a parameter vector or a
    /// signal selection.
    Select {
        /// Session name.
        session: String,
        /// Explicit parameter bits (LSB first), mutually exclusive
        /// with `signals`.
        params: Option<BitVec>,
        /// Signal names to observe, mapped to parameters server-side.
        signals: Vec<String>,
        /// Processing budget in milliseconds.
        deadline_ms: Option<f64>,
    },
    /// Drop a session.
    Close {
        /// Session name.
        session: String,
    },
    /// A session's scrub status: verdict, totals, quarantine set.
    Health {
        /// Session name.
        session: String,
    },
    /// Run one on-demand scrub pass on a session.
    Scrub {
        /// Session name.
        session: String,
    },
    /// Server statistics.
    Stats,
    /// The full always-on telemetry registry plus per-session rows,
    /// as embedded JSONL.
    Metrics,
    /// A flight-recorder dump: a session's live ring, or (with no
    /// session) the last automatic post-mortem.
    Dump {
        /// Session name; `None` asks for the last automatic dump.
        session: Option<String>,
    },
    /// The journal behind a live session: sync it and report its path
    /// and record count (requires a server started with a journal dir).
    Record {
        /// Session name.
        session: String,
    },
    /// Re-drive a journal file and verify it replays bit-for-bit.
    Replay {
        /// Journal path, **relative to the server's `--journal-dir`**
        /// (absolute paths and `..` components are rejected — the verb
        /// cannot read arbitrary server-side files).
        path: String,
    },
    /// The device fleet: counts, per-device rows.
    Devices,
    /// Gracefully drain a device: migrate its sessions to a spare while
    /// it keeps serving, then quarantine it.
    Drain {
        /// Device id.
        device: usize,
    },
    /// Kill a device and fail its sessions over to a spare.
    Fail {
        /// Device id.
        device: usize,
    },
    /// Stop the server (when the server allows it).
    Shutdown,
}

/// A request line's identity, echoed into the reply.
#[derive(Debug, Clone, Default)]
pub struct RequestMeta {
    /// The `op` string (also present on parse errors when available).
    pub op: String,
    /// The optional client-side correlation `id`.
    pub id: Option<String>,
}

/// Parse a parameter bit string (`"0110"`, LSB first).
pub fn parse_param_bits(s: &str) -> Result<BitVec, String> {
    let mut v = BitVec::zeros(s.len());
    for (i, c) in s.chars().enumerate() {
        match c {
            '0' => {}
            '1' => v.set(i, true),
            other => return Err(format!("parameter strings are 0/1 only, got {other:?}")),
        }
    }
    Ok(v)
}

/// Render a parameter vector as its wire bit string.
pub fn param_bits_string(v: &BitVec) -> String {
    (0..v.len()).map(|i| if v.get(i) { '1' } else { '0' }).collect()
}

/// Parse one request line. Returns the request plus its meta; on error
/// the meta still carries whatever `op`/`id` could be recovered so the
/// error reply can echo them.
pub fn parse_request(line: &str) -> (Result<Request, String>, RequestMeta) {
    let mut meta = RequestMeta::default();
    let ev = match parse_jsonl(line) {
        Ok(mut events) if events.len() == 1 => events.remove(0),
        Ok(_) => return (Err("expected exactly one object per line".into()), meta),
        Err(e) => return (Err(format!("malformed JSON: {e}")), meta),
    };
    meta.op = ev.str("op").unwrap_or("").to_string();
    meta.id = ev.str("id").map(str::to_string);
    let session = |key: &str| -> Result<String, String> {
        match ev.str(key) {
            Some(s) if !s.is_empty() => Ok(s.to_string()),
            _ => Err(format!("{} requires a non-empty \"session\"", meta.op)),
        }
    };
    let req = match meta.op.as_str() {
        "ping" => Ok(Request::Ping),
        "open" => session("session").map(|session| Request::Open { session }),
        "close" => session("session").map(|session| Request::Close { session }),
        "health" => session("session").map(|session| Request::Health { session }),
        "scrub" => session("session").map(|session| Request::Scrub { session }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "dump" => Ok(Request::Dump {
            session: ev.str("session").filter(|s| !s.is_empty()).map(str::to_string),
        }),
        "record" => session("session").map(|session| Request::Record { session }),
        "replay" => match ev.str("path") {
            Some(p) if !p.is_empty() => Ok(Request::Replay { path: p.to_string() }),
            _ => Err("replay requires a non-empty \"path\"".into()),
        },
        "devices" => Ok(Request::Devices),
        "drain" | "fail" => {
            let device = ev
                .num("device")
                .filter(|d| d.is_finite() && *d >= 0.0 && d.fract() == 0.0)
                .map(|d| d as usize)
                .ok_or_else(|| format!("{} requires a non-negative integer \"device\"", meta.op));
            match (meta.op.as_str(), device) {
                ("drain", Ok(device)) => Ok(Request::Drain { device }),
                ("fail", Ok(device)) => Ok(Request::Fail { device }),
                (_, Err(e)) => Err(e),
                _ => unreachable!("guarded by the outer match arm"),
            }
        }
        "shutdown" => Ok(Request::Shutdown),
        "select" => (|| {
            let session = session("session")?;
            let params = match ev.str("params") {
                Some(s) => Some(parse_param_bits(s)?),
                None => None,
            };
            let signals: Vec<String> = ev
                .str("signals")
                .map(|s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default();
            if params.is_some() != signals.is_empty() {
                return Err("select takes exactly one of \"params\" or \"signals\"".into());
            }
            let deadline_ms = ev.num("deadline_ms");
            if deadline_ms.is_some_and(|d| !d.is_finite() || d < 0.0) {
                return Err("deadline_ms must be a non-negative number".into());
            }
            Ok(Request::Select { session, params, signals, deadline_ms })
        })(),
        "" => Err("missing \"op\"".into()),
        other => Err(format!("unknown op {other:?}")),
    };
    (req, meta)
}

/// Reply builder: assembles one flat JSON line.
#[derive(Debug, Default)]
pub struct Reply {
    fields: Vec<(&'static str, JsonValue)>,
}

impl Reply {
    /// A success reply echoing the request meta.
    pub fn ok(meta: &RequestMeta) -> Reply {
        let mut r = Reply { fields: vec![("ok", JsonValue::Bool(true))] };
        r.echo(meta);
        r
    }

    /// The backpressure reply: the owning shard's inbox is full and the
    /// request was shed before any work happened. Carries the shard
    /// index and a retry hint so clients can back off instead of
    /// hammering a saturated shard.
    pub fn overloaded(meta: &RequestMeta, shard: usize, retry_after_ms: f64) -> Reply {
        Reply::error(meta, "overloaded: shard inbox is full, retry later")
            .str("kind", "overloaded")
            .num("shard", shard as f64)
            .num("retry_after_ms", retry_after_ms)
    }

    /// An error reply echoing the request meta.
    pub fn error(meta: &RequestMeta, message: &str) -> Reply {
        let mut r = Reply {
            fields: vec![
                ("ok", JsonValue::Bool(false)),
                ("error", JsonValue::Str(message.to_string())),
            ],
        };
        r.echo(meta);
        r
    }

    fn echo(&mut self, meta: &RequestMeta) {
        if !meta.op.is_empty() {
            self.fields.push(("op", JsonValue::Str(meta.op.clone())));
        }
        if let Some(id) = &meta.id {
            self.fields.push(("id", JsonValue::Str(id.clone())));
        }
    }

    /// Add a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Reply {
        self.fields.push((key, JsonValue::Str(value.into())));
        self
    }

    /// Add a numeric field.
    pub fn num(mut self, key: &'static str, value: f64) -> Reply {
        self.fields.push((key, JsonValue::Num(value)));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Reply {
        self.fields.push((key, JsonValue::Bool(value)));
        self
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let borrowed: Vec<(&str, JsonValue)> =
            self.fields.iter().map(|(k, v)| (*k, v.clone())).collect();
        pfdbg_obs::jsonl::write_object(&borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_set() {
        let (r, m) = parse_request("{\"op\":\"ping\"}");
        assert_eq!(r.unwrap(), Request::Ping);
        assert_eq!(m.op, "ping");
        let (r, _) = parse_request("{\"op\":\"open\",\"session\":\"s1\"}");
        assert_eq!(r.unwrap(), Request::Open { session: "s1".into() });
        let (r, m) = parse_request(
            "{\"op\":\"select\",\"session\":\"s1\",\"params\":\"0110\",\"id\":\"7\"}",
        );
        match r.unwrap() {
            Request::Select { session, params, signals, deadline_ms } => {
                assert_eq!(session, "s1");
                let p = params.unwrap();
                assert_eq!(param_bits_string(&p), "0110");
                assert!(signals.is_empty());
                assert!(deadline_ms.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(m.id.as_deref(), Some("7"));
        let (r, _) = parse_request("{\"op\":\"select\",\"session\":\"s\",\"signals\":\"g2, g7\"}");
        match r.unwrap() {
            Request::Select { signals, .. } => assert_eq!(signals, vec!["g2", "g7"]),
            other => panic!("wrong parse: {other:?}"),
        }
        let (r, _) = parse_request("{\"op\":\"health\",\"session\":\"s1\"}");
        assert_eq!(r.unwrap(), Request::Health { session: "s1".into() });
        let (r, _) = parse_request("{\"op\":\"scrub\",\"session\":\"s1\"}");
        assert_eq!(r.unwrap(), Request::Scrub { session: "s1".into() });
        let (r, _) = parse_request("{\"op\":\"metrics\"}");
        assert_eq!(r.unwrap(), Request::Metrics);
        let (r, _) = parse_request("{\"op\":\"dump\",\"session\":\"s1\"}");
        assert_eq!(r.unwrap(), Request::Dump { session: Some("s1".into()) });
        // Session-less dump asks for the last automatic post-mortem.
        let (r, _) = parse_request("{\"op\":\"dump\"}");
        assert_eq!(r.unwrap(), Request::Dump { session: None });
        let (r, _) = parse_request("{\"op\":\"record\",\"session\":\"s1\"}");
        assert_eq!(r.unwrap(), Request::Record { session: "s1".into() });
        let (r, _) = parse_request("{\"op\":\"replay\",\"path\":\"j/s1.pfdj\"}");
        assert_eq!(r.unwrap(), Request::Replay { path: "j/s1.pfdj".into() });
        let (r, _) = parse_request("{\"op\":\"replay\"}");
        assert!(r.unwrap_err().contains("path"));
        let (r, _) = parse_request("{\"op\":\"devices\"}");
        assert_eq!(r.unwrap(), Request::Devices);
        let (r, _) = parse_request("{\"op\":\"drain\",\"device\":1}");
        assert_eq!(r.unwrap(), Request::Drain { device: 1 });
        let (r, _) = parse_request("{\"op\":\"fail\",\"device\":0}");
        assert_eq!(r.unwrap(), Request::Fail { device: 0 });
        let (r, _) = parse_request("{\"op\":\"drain\"}");
        assert!(r.unwrap_err().contains("device"));
        let (r, _) = parse_request("{\"op\":\"fail\",\"device\":-2}");
        assert!(r.unwrap_err().contains("device"));
        let (r, _) = parse_request("{\"op\":\"fail\",\"device\":1.5}");
        assert!(r.unwrap_err().contains("device"));
        let (r, _) = parse_request("{\"op\":\"record\"}");
        assert!(r.unwrap_err().contains("session"));
        let (r, _) = parse_request("{\"op\":\"health\"}");
        assert!(r.unwrap_err().contains("session"));
    }

    #[test]
    fn rejects_malformed_requests_with_context() {
        let (r, _) = parse_request("not json at all");
        assert!(r.unwrap_err().contains("malformed JSON"));
        let (r, m) = parse_request("{\"op\":\"teleport\",\"id\":\"x\"}");
        assert!(r.unwrap_err().contains("unknown op"));
        assert_eq!(m.id.as_deref(), Some("x"));
        let (r, _) = parse_request("{\"op\":\"select\",\"session\":\"s\"}");
        assert!(r.unwrap_err().contains("exactly one of"));
        let (r, _) = parse_request(
            "{\"op\":\"select\",\"session\":\"s\",\"params\":\"01\",\"signals\":\"a\"}",
        );
        assert!(r.unwrap_err().contains("exactly one of"));
        let (r, _) = parse_request("{\"op\":\"select\",\"session\":\"s\",\"params\":\"01x\"}");
        assert!(r.unwrap_err().contains("0/1"));
        let (r, _) = parse_request("{\"op\":\"open\"}");
        assert!(r.unwrap_err().contains("session"));
    }

    #[test]
    fn replies_render_flat_json() {
        let meta = RequestMeta { op: "select".into(), id: Some("42".into()) };
        let line = Reply::ok(&meta).num("bits_changed", 3.0).str("cache", "hit").render();
        let back = pfdbg_obs::jsonl::parse_jsonl(&line).unwrap();
        assert_eq!(back[0].str("op"), Some("select"));
        assert_eq!(back[0].str("id"), Some("42"));
        assert_eq!(back[0].num("bits_changed"), Some(3.0));
        let err = Reply::error(&meta, "no such session").render();
        let back = pfdbg_obs::jsonl::parse_jsonl(&err).unwrap();
        assert_eq!(back[0].fields.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(back[0].str("error"), Some("no such session"));
        let meta = RequestMeta { op: "health".into(), id: None };
        let line = Reply::ok(&meta).bool("needs_resync", true).str("quarantine", "3,7").render();
        let back = pfdbg_obs::jsonl::parse_jsonl(&line).unwrap();
        assert_eq!(back[0].fields.get("needs_resync"), Some(&JsonValue::Bool(true)));
        assert_eq!(back[0].str("quarantine"), Some("3,7"));
    }

    #[test]
    fn param_bits_round_trip() {
        let v = parse_param_bits("10011").unwrap();
        assert!(v.get(0) && !v.get(1) && v.get(3) && v.get(4));
        assert_eq!(param_bits_string(&v), "10011");
        assert_eq!(param_bits_string(&parse_param_bits("").unwrap()), "");
    }
}
