//! TRoute: PathFinder negotiated-congestion routing with
//! parameterization-aware resource sharing.
//!
//! Standard PathFinder: every net is ripped up and rerouted each
//! iteration; node costs grow with present congestion and accumulated
//! history until no resource is overused. The parameterization twist
//! (the paper's §IV.A.4): a *tunable net* has several alternative
//! sources, of which exactly one is active per specialization — so the
//! alternatives may overlap each other freely (their union is charged to
//! the net once), and all alternatives must converge on the same chosen
//! input pin of every sink.

use crate::pack::PackedDesign;
use crate::place::Placement;
use pfdbg_arch::{Device, RRGraph, RRKind, RRNode};
use pfdbg_util::id::EntityId;
use pfdbg_util::{FxHashMap, FxHashSet};
use std::collections::BinaryHeap;

/// Router parameters.
#[derive(Debug, Clone, Copy)]
pub struct RouteConfig {
    /// Maximum PathFinder iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion factor.
    pub pres_fac: f32,
    /// Multiplier applied to `pres_fac` each iteration.
    pub pres_mult: f32,
    /// History cost increment per overused node per iteration.
    pub hist_fac: f32,
    /// A* weight on the Manhattan-distance heuristic (1.0 = admissible).
    pub astar: f32,
    /// Worker threads for speculative per-net routing (0 = global
    /// [`pfdbg_util::par::threads`] policy). The result is bit-identical
    /// to the serial router at every thread count.
    pub threads: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            max_iterations: 40,
            pres_fac: 0.5,
            pres_mult: 1.8,
            hist_fac: 0.4,
            astar: 1.0,
            threads: 0,
        }
    }
}

/// The routed tree of one alternative source of one net.
#[derive(Debug, Clone)]
pub struct BranchRoute {
    /// Alternative index (into `PRNet::sources`).
    pub alternative: usize,
    /// Directed wiring: `(from, to)` RRG node pairs, one per switch that
    /// must be turned on when this alternative is selected.
    pub edges: Vec<(RRNode, RRNode)>,
}

/// One net's routing.
#[derive(Debug, Clone)]
pub struct NetRoute {
    /// Net index into `PackedDesign::nets`.
    pub net: usize,
    /// One routed tree per alternative source.
    pub branches: Vec<BranchRoute>,
    /// Chosen input pin per sink block (keyed by sink block index).
    pub sink_pins: FxHashMap<usize, RRNode>,
}

/// The complete routing result.
#[derive(Debug)]
pub struct RoutedDesign {
    /// Per-net routes (same order as `PackedDesign::nets`).
    pub routes: Vec<NetRoute>,
    /// PathFinder iterations used.
    pub iterations: usize,
    /// Distinct wire (channel) nodes used, summed over nets (a net's
    /// internal sharing counts once — the paper's "cables" metric).
    pub wires_used: usize,
    /// Whether routing converged without overuse.
    pub success: bool,
}

impl RoutedDesign {
    /// Total number of switch configurations (directed edges) across all
    /// nets and alternatives.
    pub fn total_switches(&self) -> usize {
        self.routes.iter().map(|r| r.branches.iter().map(|b| b.edges.len()).sum::<usize>()).sum()
    }
}

#[derive(PartialEq)]
struct HeapItem {
    priority: f32,
    cost: f32,
    node: RRNode,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on priority via reversed compare; NaN-free by
        // construction.
        other
            .priority
            .partial_cmp(&self.priority)
            .expect("finite costs")
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Scratch arrays for one net-routing worker: A* state with epoch
/// stamping plus the per-net touched-node tracker used to validate
/// speculative routes.
struct NetScratch {
    cost_to: Vec<f32>,
    parent: Vec<RRNode>,
    epoch: Vec<u32>,
    cur_epoch: u32,
    /// Stamped with `touch_stamp` the first time a node's congestion
    /// state becomes visible to the current net's searches.
    touched_mark: Vec<u32>,
    touch_stamp: u32,
}

impl NetScratch {
    fn new(n_nodes: usize) -> NetScratch {
        NetScratch {
            cost_to: vec![f32::INFINITY; n_nodes],
            parent: vec![RRNode(u32::MAX); n_nodes],
            epoch: vec![0; n_nodes],
            cur_epoch: 0,
            touched_mark: vec![0; n_nodes],
            touch_stamp: 0,
        }
    }
}

/// One net's routing attempt plus the evidence needed to commit it.
struct NetAttempt {
    route: NetRoute,
    /// Union of RRG nodes the route occupies.
    used: FxHashSet<RRNode>,
    /// Every node whose congestion state the searches read (epoch-stamped
    /// nodes): a speculative route is valid iff none of these is occupied
    /// by an earlier net at commit time.
    touched: Vec<RRNode>,
    /// All sinks reached?
    ok: bool,
}

fn base_cost(kind: RRKind) -> f32 {
    match kind {
        RRKind::ChanX(_) | RRKind::ChanY(_) => 1.0,
        RRKind::IPin(_) => 0.95,
        RRKind::OPin(_) => 1.0,
    }
}

/// Route one net against the congestion state `occ`/`hist`, touching no
/// shared state: occupancy updates are the caller's job (the serial
/// commit). This is the exact per-net body of the classic serial
/// PathFinder inner loop — heap ties break on node id, so the search is
/// fully deterministic given (`occ`, `hist`, `pres_fac`).
#[allow(clippy::too_many_arguments)]
fn route_one_net(
    design: &PackedDesign,
    placement: &Placement,
    rrg: &RRGraph,
    cfg: &RouteConfig,
    src_pins: &[RRNode],
    is_opin: &[bool],
    occ: &[u16],
    hist: &[f32],
    pres_fac: f32,
    ni: usize,
    scratch: &mut NetScratch,
) -> Result<NetAttempt, String> {
    let net = &design.nets[ni];
    let mut net_route = NetRoute {
        net: ni,
        branches: Vec::with_capacity(net.sources.len()),
        sink_pins: FxHashMap::default(),
    };
    let mut net_used: FxHashSet<RRNode> = FxHashSet::default();
    let mut touched: Vec<RRNode> = Vec::new();
    scratch.touch_stamp += 1;
    let mut ok = true;

    for (alt, &src) in src_pins.iter().enumerate() {
        // The tree of this alternative starts at its opin.
        let mut tree: FxHashSet<RRNode> = FxHashSet::default();
        tree.insert(src);
        net_used.insert(src);
        let mut edges: Vec<(RRNode, RRNode)> = Vec::new();

        // Sinks, nearest first.
        let mut sinks: Vec<usize> = net.sinks.clone();
        let src_data = rrg.node(src);
        sinks.sort_by_key(|&b| {
            let l = placement.locs[b];
            (l.x as i32 - src_data.x as i32).abs() + (l.y as i32 - src_data.y as i32).abs()
        });

        for &sink_block in &sinks {
            let loc = placement.locs[sink_block];
            let (sx, sy) = (loc.x as usize, loc.y as usize);
            // Goal pins: the already chosen pin for this sink, or
            // any input pin of the tile (pads use their sub pin).
            let goals: Vec<RRNode> = if let Some(&p) = net_route.sink_pins.get(&sink_block) {
                vec![p]
            } else {
                match design.blocks[sink_block] {
                    crate::pack::Block::Clb(_) => {
                        (0..rrg.n_ipins(sx, sy)).filter_map(|p| rrg.ipin(sx, sy, p)).collect()
                    }
                    _ => rrg.ipin(sx, sy, loc.sub as usize).into_iter().collect(),
                }
            };
            if goals.is_empty() {
                return Err(format!("sink block {sink_block} has no input pins"));
            }
            let goal_set: FxHashSet<RRNode> = goals.iter().copied().collect();

            // Dijkstra/A* from the whole current tree.
            scratch.cur_epoch += 1;
            let cur_epoch = scratch.cur_epoch;
            let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
            for &t in tree.iter() {
                scratch.cost_to[t.index()] = 0.0;
                scratch.epoch[t.index()] = cur_epoch;
                scratch.parent[t.index()] = t;
                if scratch.touched_mark[t.index()] != scratch.touch_stamp {
                    scratch.touched_mark[t.index()] = scratch.touch_stamp;
                    touched.push(t);
                }
                let h = cfg.astar * rrg.distance(t, goals[0]) as f32;
                heap.push(HeapItem { priority: h, cost: 0.0, node: t });
            }
            let mut found: Option<RRNode> = None;
            while let Some(HeapItem { cost, node, .. }) = heap.pop() {
                if scratch.epoch[node.index()] == cur_epoch && cost > scratch.cost_to[node.index()]
                {
                    continue;
                }
                if goal_set.contains(&node) {
                    found = Some(node);
                    break;
                }
                for (_, next) in rrg.out_edges(node) {
                    let nd = rrg.node(next);
                    // IPins other than goals are dead ends for
                    // this connection; skip cheaply.
                    if matches!(nd.kind, RRKind::IPin(_)) && !goal_set.contains(&next) {
                        continue;
                    }
                    if matches!(nd.kind, RRKind::OPin(_)) {
                        continue; // cannot route *through* an opin
                    }
                    let idx = next.index();
                    // This node's congestion state is now visible to the
                    // search: record it for speculative validation.
                    if scratch.touched_mark[idx] != scratch.touch_stamp {
                        scratch.touched_mark[idx] = scratch.touch_stamp;
                        touched.push(next);
                    }
                    // Present congestion: the net's own nodes are
                    // free (sharing within the net).
                    let over = if net_used.contains(&next) {
                        0.0
                    } else {
                        let o = occ[idx] as f32 + 1.0 - 1.0; // cap = 1
                        o.max(0.0)
                    };
                    let c = cost + base_cost(nd.kind) * (1.0 + hist[idx]) * (1.0 + pres_fac * over);
                    if scratch.epoch[idx] != cur_epoch || c < scratch.cost_to[idx] {
                        scratch.epoch[idx] = cur_epoch;
                        scratch.cost_to[idx] = c;
                        scratch.parent[idx] = node;
                        let h = cfg.astar * rrg.distance(next, goals[0]) as f32;
                        heap.push(HeapItem { priority: c + h, cost: c, node: next });
                    }
                }
            }
            let Some(hit) = found else {
                ok = false;
                continue;
            };
            // Backtrace into the tree.
            let mut cur = hit;
            let mut path = vec![cur];
            while scratch.parent[cur.index()] != cur {
                cur = scratch.parent[cur.index()];
                path.push(cur);
            }
            path.reverse();
            for w in path.windows(2) {
                edges.push((w[0], w[1]));
            }
            for &n in &path {
                tree.insert(n);
                net_used.insert(n);
            }
            net_route.sink_pins.insert(sink_block, hit);
        }
        net_route.branches.push(BranchRoute { alternative: alt, edges });
    }
    let _ = is_opin; // occupancy handling lives in the commit
    Ok(NetAttempt { route: net_route, used: net_used, touched, ok })
}

/// Route a placed design. Pin assignment: the driver uses the output pin
/// of its BLE (or pad); each sink may use any input pin of its tile, the
/// router picks one under congestion.
///
/// With `cfg.threads > 1` each negotiated-congestion round routes nets
/// *speculatively* in parallel against the post-rip-up state (occupancy
/// is all zeros after the rip-up), recording every node whose congestion
/// each search read. Routes are then committed serially in the serial
/// net order; a speculative route is accepted iff none of its touched
/// nodes is occupied by an earlier-committed net — in that case the
/// serial search would have seen the exact same costs (ties break on
/// node id), so the route is identical by construction. Otherwise the
/// net is re-routed serially against the current occupancy. The result
/// is therefore bit-identical to the serial router at every thread
/// count.
pub fn route(
    design: &PackedDesign,
    placement: &Placement,
    _dev: &Device,
    rrg: &RRGraph,
    cfg: &RouteConfig,
) -> Result<RoutedDesign, String> {
    let n_nodes = rrg.n_nodes();
    let n_nets = design.nets.len();
    let workers = pfdbg_util::par::resolve(cfg.threads);

    // Source opin per (net, alternative); sink tiles per net.
    let mut source_pins: Vec<Vec<RRNode>> = Vec::with_capacity(n_nets);
    for net in &design.nets {
        let mut pins = Vec::with_capacity(net.sources.len());
        for s in &net.sources {
            let loc = placement.locs[s.block];
            let pin_idx = match design.blocks[s.block] {
                crate::pack::Block::Clb(_) => s.ble,
                _ => loc.sub as usize,
            };
            let opin = rrg
                .opin(loc.x as usize, loc.y as usize, pin_idx)
                .ok_or_else(|| format!("no opin {pin_idx} at ({},{})", loc.x, loc.y))?;
            pins.push(opin);
        }
        source_pins.push(pins);
    }

    // Congestion state. OPIN nodes are exempt from occupancy: the router
    // never routes *through* an output pin, so the only way two nets meet
    // at one opin is when they carry the same physical signal (an
    // observed net tapped by both its ordinary fanout net and a tunable
    // trace net) — legitimate sharing, not a conflict.
    let is_opin: Vec<bool> =
        (0..n_nodes).map(|i| matches!(rrg.node(RRNode(i as u32)).kind, RRKind::OPin(_))).collect();
    let mut occ = vec![0u16; n_nodes]; // nets using each node
    let mut hist = vec![0f32; n_nodes];
    let mut pres_fac = cfg.pres_fac;

    // Per-net union of used nodes.
    let mut used: Vec<FxHashSet<RRNode>> = vec![FxHashSet::default(); n_nets];
    let mut routes: Vec<Option<NetRoute>> = (0..n_nets).map(|_| None).collect();

    let mut scratch = NetScratch::new(n_nodes);
    // Occupancy snapshot for speculative routing: after the rip-up the
    // live occupancy is identically zero, so a zero vector stands in.
    let zero_occ = vec![0u16; n_nodes];
    // Speculative-round scratch pool, reused across PathFinder
    // iterations: each NetScratch is epoch-stamped, so a stale pool
    // entry behaves identically to a fresh allocation.
    let mut spec_pool: Vec<NetScratch> = Vec::new();

    let mut converged = false;
    let mut iterations = 0;
    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        // Rip up everything.
        for set in &mut used {
            for &n in set.iter() {
                if !is_opin[n.index()] {
                    occ[n.index()] -= 1;
                }
            }
            set.clear();
        }
        routes.fill(None);

        // Route nets, largest fanout first (harder nets earlier).
        let mut order: Vec<usize> = (0..n_nets).collect();
        order.sort_by_key(|&ni| {
            std::cmp::Reverse(design.nets[ni].sinks.len() * design.nets[ni].sources.len())
        });

        // Speculative round: every net routed against the clean
        // post-rip-up state, in parallel, with per-worker scratch.
        let speculative: Vec<Option<Result<NetAttempt, String>>> = if workers > 1 && n_nets > 1 {
            pfdbg_util::par::map_reuse_in(
                workers,
                &order,
                &mut spec_pool,
                || NetScratch::new(n_nodes),
                |sc, &ni| {
                    Some(route_one_net(
                        design,
                        placement,
                        rrg,
                        cfg,
                        &source_pins[ni],
                        &is_opin,
                        &zero_occ,
                        &hist,
                        pres_fac,
                        ni,
                        sc,
                    ))
                },
            )
        } else {
            (0..order.len()).map(|_| None).collect()
        };

        // Serial commit in net order: accept a speculative route only if
        // no node its searches touched is already occupied.
        let mut all_ok = true;
        for (spec, &ni) in speculative.into_iter().zip(order.iter()) {
            let attempt = match spec {
                Some(Ok(a)) if a.touched.iter().all(|&t| occ[t.index()] == 0) => {
                    pfdbg_obs::counter_add("route.spec_commit", 1);
                    a
                }
                Some(Err(e)) => return Err(e),
                other => {
                    if other.is_some() {
                        pfdbg_obs::counter_add("route.spec_retry", 1);
                    }
                    route_one_net(
                        design,
                        placement,
                        rrg,
                        cfg,
                        &source_pins[ni],
                        &is_opin,
                        &occ,
                        &hist,
                        pres_fac,
                        ni,
                        &mut scratch,
                    )?
                }
            };
            for &n in &attempt.used {
                if !is_opin[n.index()] {
                    occ[n.index()] += 1;
                }
            }
            all_ok &= attempt.ok;
            used[ni] = attempt.used;
            routes[ni] = Some(attempt.route);
        }

        // Check for overuse.
        let mut overused = 0usize;
        for idx in 0..n_nodes {
            if occ[idx] > 1 {
                overused += 1;
                hist[idx] += cfg.hist_fac * (occ[idx] - 1) as f32;
            }
        }
        // Per-iteration congestion telemetry: total overflow events
        // across all iterations plus the latest iteration's residue.
        pfdbg_obs::counter_add("route.iterations", 1);
        pfdbg_obs::counter_add("route.overflow", overused as u64);
        pfdbg_obs::gauge_set("route.overused_last", overused as f64);
        if overused == 0 && all_ok {
            converged = true;
            break;
        }
        pres_fac *= cfg.pres_mult;
    }

    let wires_used: usize = used
        .iter()
        .map(|set| {
            set.iter()
                .filter(|&&n| matches!(rrg.node(n).kind, RRKind::ChanX(_) | RRKind::ChanY(_)))
                .count()
        })
        .sum();

    let routes: Vec<NetRoute> =
        routes.into_iter().map(|r| r.expect("all nets attempted")).collect();

    Ok(RoutedDesign { routes, iterations, wires_used, success: converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{Block, PRNet, PackedDesign, SourceRef};
    use crate::place::{place, PlaceConfig};
    use pfdbg_arch::{build_rrg, ArchSpec, Device};

    fn route_design(design: &PackedDesign, clb_side: usize) -> (RoutedDesign, Device) {
        let dev =
            Device::new(ArchSpec { channel_width: 10, ..Default::default() }, clb_side, clb_side);
        let rrg = build_rrg(&dev);
        let placement = place(design, &dev, &PlaceConfig::default()).unwrap();
        let routed = route(design, &placement, &dev, &rrg, &RouteConfig::default()).unwrap();
        (routed, dev)
    }

    fn simple_design(n_clb: usize, nets: Vec<PRNet>) -> PackedDesign {
        let mut blocks = Vec::new();
        let mut clusters = Vec::new();
        for i in 0..n_clb {
            blocks.push(Block::Clb(i));
            clusters.push(Default::default());
        }
        PackedDesign { blocks, clusters, nets, n_tcons: 0 }
    }

    #[test]
    fn routes_point_to_point() {
        let d = simple_design(
            2,
            vec![PRNet {
                name: "n".into(),
                sources: vec![SourceRef { block: 0, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![1],
                tunable: false,
            }],
        );
        let (r, _) = route_design(&d, 3);
        assert!(r.success, "routing failed after {} iterations", r.iterations);
        assert_eq!(r.routes.len(), 1);
        let br = &r.routes[0].branches[0];
        assert!(!br.edges.is_empty());
        // Path is connected: consecutive edges chain.
        for w in br.edges.windows(2) {
            // edges form a tree built from paths; consecutive pairs within
            // one path chain, so at least the first edge starts at an opin.
            let _ = w;
        }
        assert!(r.wires_used > 0);
    }

    #[test]
    fn multi_sink_net_builds_tree() {
        let d = simple_design(
            4,
            vec![PRNet {
                name: "fanout".into(),
                sources: vec![SourceRef { block: 0, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![1, 2, 3],
                tunable: false,
            }],
        );
        let (r, _) = route_design(&d, 3);
        assert!(r.success);
        assert_eq!(r.routes[0].sink_pins.len(), 3);
    }

    #[test]
    fn many_nets_negotiate_congestion() {
        // All-to-all-ish traffic on a small device forces negotiation.
        let mut nets = Vec::new();
        for i in 0..8usize {
            nets.push(PRNet {
                name: format!("n{i}"),
                sources: vec![SourceRef { block: i, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![(i + 3) % 8, (i + 5) % 8],
                tunable: false,
            });
        }
        let d = simple_design(8, nets);
        let (r, _) = route_design(&d, 3);
        assert!(r.success, "congestion never resolved");
        // No wire used by two different nets (checked via per-net sets
        // having disjoint union sizes vs occupancy — recompute here).
        let mut seen: FxHashMap<RRNode, usize> = FxHashMap::default();
        for nr in &r.routes {
            let mut mine: FxHashSet<RRNode> = FxHashSet::default();
            for b in &nr.branches {
                for &(a, bb) in &b.edges {
                    mine.insert(a);
                    mine.insert(bb);
                }
            }
            for n in mine {
                if let Some(&other) = seen.get(&n) {
                    panic!("node {n:?} shared by nets {other} and {}", nr.net);
                }
                seen.insert(n, nr.net);
            }
        }
    }

    #[test]
    fn tunable_net_alternatives_share_and_converge() {
        let d = PackedDesign {
            blocks: vec![Block::Clb(0), Block::Clb(1), Block::Clb(2)],
            clusters: vec![Default::default(), Default::default(), Default::default()],
            nets: vec![PRNet {
                name: "tn".into(),
                sources: vec![SourceRef { block: 0, ble: 0 }, SourceRef { block: 1, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![2],
                tunable: true,
            }],
            n_tcons: 1,
        };
        let (r, _) = route_design(&d, 3);
        assert!(r.success);
        let nr = &r.routes[0];
        assert_eq!(nr.branches.len(), 2, "one tree per alternative");
        // Both alternatives terminate on the same sink pin.
        let pin = nr.sink_pins[&2];
        for b in &nr.branches {
            let last_targets: FxHashSet<RRNode> = b.edges.iter().map(|&(_, t)| t).collect();
            assert!(last_targets.contains(&pin), "alternative misses shared pin");
        }
    }

    #[test]
    fn parallel_routing_is_bit_identical_to_serial() {
        // The congested all-to-all design: plenty of speculative
        // conflicts, so both the commit and the serial-retry paths run.
        let mut nets = Vec::new();
        for i in 0..8usize {
            nets.push(PRNet {
                name: format!("n{i}"),
                sources: vec![SourceRef { block: i, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![(i + 3) % 8, (i + 5) % 8],
                tunable: false,
            });
        }
        let d = simple_design(8, nets);
        let dev = Device::new(ArchSpec { channel_width: 10, ..Default::default() }, 3, 3);
        let rrg = build_rrg(&dev);
        let placement = place(&d, &dev, &PlaceConfig::default()).unwrap();
        let serial =
            route(&d, &placement, &dev, &rrg, &RouteConfig { threads: 1, ..Default::default() })
                .unwrap();
        for threads in [2usize, 8] {
            let par =
                route(&d, &placement, &dev, &rrg, &RouteConfig { threads, ..Default::default() })
                    .unwrap();
            assert_eq!(par.iterations, serial.iterations, "threads={threads}");
            assert_eq!(par.wires_used, serial.wires_used, "threads={threads}");
            assert_eq!(par.success, serial.success);
            for (a, b) in par.routes.iter().zip(serial.routes.iter()) {
                assert_eq!(a.net, b.net);
                assert_eq!(a.sink_pins, b.sink_pins, "threads={threads} net={}", a.net);
                assert_eq!(a.branches.len(), b.branches.len());
                for (ba, bb) in a.branches.iter().zip(b.branches.iter()) {
                    assert_eq!(ba.alternative, bb.alternative);
                    assert_eq!(ba.edges, bb.edges, "threads={threads} net={}", a.net);
                }
            }
        }
    }

    #[test]
    fn unroutable_design_reports_failure() {
        // Zero-ish channel width via a device so tiny that many nets
        // can't fit: 1x1 CLB grid, channel width 2, with 2 pads fighting.
        let dev = Device::new(
            ArchSpec { channel_width: 2, fc_in: 1.0, fc_out: 1.0, ..Default::default() },
            1,
            1,
        );
        let rrg = build_rrg(&dev);
        let mut nets = Vec::new();
        // 6 distinct nets from one CLB's 4 opins — more signals than the
        // two tracks around one tile can carry to distant pads.
        let mut blocks = vec![Block::Clb(0)];
        for i in 0..6 {
            blocks.push(Block::OutPad(format!("o{i}")));
            nets.push(PRNet {
                name: format!("n{i}"),
                sources: vec![SourceRef { block: 0, ble: i % 4 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![i + 1],
                tunable: false,
            });
        }
        let d = PackedDesign { blocks, clusters: vec![Default::default()], nets, n_tcons: 0 };
        let placement = place(&d, &dev, &PlaceConfig::default()).unwrap();
        let cfg = RouteConfig { max_iterations: 6, ..Default::default() };
        let r = route(&d, &placement, &dev, &rrg, &cfg).unwrap();
        assert!(!r.success, "expected failure on starved device");
    }
}
