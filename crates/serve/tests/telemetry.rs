//! Fleet-telemetry tests for the debug service: the `metrics` verb
//! must expose the always-on registry (counters, histograms with
//! specialize percentiles, SLO burn, per-session rows) as embedded
//! JSONL that `pfdbg report` can digest; the `dump` verb must replay a
//! session's flight recorder; and — the acceptance criterion — driving
//! a session to quarantine under chaos must leave an *automatic*
//! flight-recorder dump whose trailing events reconstruct the failing
//! turn sequence.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_emu::{IcapFaultConfig, SeuConfig};
use pfdbg_obs::jsonl::JsonValue;
use pfdbg_pconf::{CommitPolicy, ScrubPolicy};
use pfdbg_serve::server::{Server, ServerConfig};
use pfdbg_serve::session::{Engine, SessionManager};
use pfdbg_util::BitVec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn build_engine() -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 8,
        n_outputs: 6,
        n_gates: 40,
        depth: 5,
        n_latches: 2,
        seed: 33,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        6,
    )
    .unwrap();
    let off = pfdbg_core::offline(&inst, &OfflineConfig::default()).unwrap();
    Engine::new(inst, off.scg.unwrap(), off.layout.unwrap(), off.icap)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn roundtrip(&mut self, line: &str) -> pfdbg_obs::jsonl::Event {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let mut events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        assert_eq!(events.len(), 1, "one reply per request: {reply:?}");
        events.remove(0)
    }
}

fn assert_ok(ev: &pfdbg_obs::jsonl::Event) {
    assert_eq!(ev.fields.get("ok"), Some(&JsonValue::Bool(true)), "expected ok reply: {ev:?}");
}

/// `metrics` and `dump` over the wire: the embedded JSONL carries the
/// always-on counters, the specialize histogram, SLO burn lines, and a
/// per-session row; the flight dump replays the session's turns in
/// order; `health` surfaces SLO burn; `stats` surfaces specialize
/// percentiles.
#[test]
fn metrics_and_dump_verbs_round_trip() {
    let manager = SessionManager::new(Arc::new(build_engine()), 16);
    let server =
        Server::start(manager, ServerConfig { workers: 2, ..ServerConfig::default() }).unwrap();
    let mut c = Client::connect(server.local_addr());

    let open = c.roundtrip("{\"op\":\"open\",\"session\":\"m\"}");
    assert_ok(&open);
    let n = open.num("n_params").unwrap() as usize;
    for turn in 0..3 {
        let params: String = (0..n).map(|i| if i == turn % n.max(1) { '1' } else { '0' }).collect();
        assert_ok(&c.roundtrip(&format!(
            "{{\"op\":\"select\",\"session\":\"m\",\"params\":\"{params}\"}}"
        )));
    }

    // ---- metrics: the full registry as embedded JSONL ----
    let metrics = c.roundtrip("{\"op\":\"metrics\"}");
    assert_ok(&metrics);
    assert_eq!(metrics.num("sessions"), Some(1.0));
    let body = metrics.str("metrics").unwrap().to_string();
    assert!(metrics.num("lines").unwrap() as usize == body.lines().count());
    let events = pfdbg_obs::jsonl::parse_jsonl(&body).expect("embedded registry parses");
    let by = |kind: &str, name: &str| {
        events.iter().find(|e| e.kind() == kind && e.str("name") == Some(name))
    };
    let turns = by("counter", "serve.turns").expect("serve.turns counter");
    assert!(turns.num("value").unwrap() >= 3.0);
    let spec = by("hist", "scg.specialize_us").expect("specialize histogram");
    assert!(spec.num("count").unwrap() >= 3.0, "3 cache misses recorded: {spec:?}");
    assert!(spec.num("p99_us").unwrap() > 0.0);
    assert!(spec.str("buckets").unwrap().contains(':'), "bucket string present");
    let slo = by("slo", "slo.specialize_us").expect("specialize SLO");
    assert_eq!(slo.num("budget_us"), Some(50.0));
    assert!(slo.num("total").unwrap() >= 3.0);
    let row = by("session", "m").expect("per-session row");
    assert_eq!(row.num("turns"), Some(3.0));
    assert_eq!(row.str("health"), Some("clean"));
    assert_eq!(row.fields.get("needs_resync"), Some(&JsonValue::Bool(false)));
    // The embedded document is a valid pfdbg-obs dialect: report
    // digests it without tripping on the session rows.
    let summary = pfdbg_obs::summarize(&events);
    assert!(summary.hists.iter().any(|h| h.name == "scg.specialize_us"));
    assert!(summary.slos.iter().any(|s| s.name == "slo.specialize_us"));

    // ---- dump: the session's flight recorder, oldest first ----
    let dump = c.roundtrip("{\"op\":\"dump\",\"session\":\"m\"}");
    assert_ok(&dump);
    assert_eq!(dump.str("source"), Some("live"));
    let flight = pfdbg_obs::jsonl::parse_jsonl(dump.str("flight").unwrap()).unwrap();
    assert_eq!(dump.num("events").unwrap() as usize, flight.len());
    let kinds: Vec<&str> = flight.iter().map(|e| e.str("event").unwrap()).collect();
    assert_eq!(
        kinds,
        vec!["turn_start", "turn_commit", "turn_start", "turn_commit", "turn_start", "turn_commit"],
        "3 clean turns replay as start/commit pairs"
    );
    let seqs: Vec<f64> = flight.iter().map(|e| e.num("seq").unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "monotone sequence numbers: {seqs:?}");
    assert_eq!(flight.last().unwrap().num("turn"), Some(2.0));

    // No rollback, no quarantine: nothing was auto-dumped yet.
    let none = c.roundtrip("{\"op\":\"dump\"}");
    assert_eq!(none.fields.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(none.str("error").unwrap().contains("no automatic"), "{none:?}");

    // ---- health carries fleet SLO burn, stats carries percentiles ----
    let health = c.roundtrip("{\"op\":\"health\",\"session\":\"m\"}");
    assert_ok(&health);
    assert!(health.num("slo_specialize_total").unwrap() >= 3.0);
    assert!(health.num("slo_turn_total").unwrap() >= 3.0);
    assert!(health.num("slo_specialize_burned").is_some());
    let stats = c.roundtrip("{\"op\":\"stats\"}");
    assert_ok(&stats);
    assert!(stats.num("specialize_p99_us").unwrap() > 0.0);
    assert!(stats.num("specialize_p50_us").unwrap() <= stats.num("specialize_p99_us").unwrap());
    assert!(stats.num("turn_p99_us").unwrap() > 0.0);

    server.shutdown();
}

/// The acceptance criterion: a frame driven to quarantine under chaos
/// (dead write path, SEUs striking every tick) leaves an automatic
/// flight-recorder dump for the right session, and its trailing events
/// reconstruct the failing sequence — the turn that ticked the SEUs in,
/// the scrub passes that could not repair, and the final quarantine.
#[test]
fn quarantine_leaves_an_automatic_dump_reconstructing_the_failure() {
    let manager = SessionManager::with_chaos_scrub(
        Arc::new(build_engine()),
        16,
        Some(IcapFaultConfig { write_error_rate: 1.0, seed: 3, ..IcapFaultConfig::default() }),
        CommitPolicy { max_retries: 0, ..CommitPolicy::default() },
        Some(SeuConfig { rate: 1.0, burst: 1, seed: 11 }),
        ScrubPolicy::default(),
    );
    manager.open("q").unwrap();
    assert!(manager.last_flight_dump().is_none(), "nothing went wrong yet");
    let n = manager.engine().n_params();
    // The all-zeros select writes no frames (trivially commits over the
    // dead port) but ticks the channel: every frame takes an upset.
    manager.select("q", &BitVec::zeros(n)).unwrap();
    let attempts = ScrubPolicy::default().max_repair_attempts as usize;
    for _ in 0..attempts {
        manager.scrub_session("q").unwrap();
    }

    let (session, dump) = manager.last_flight_dump().expect("quarantine must auto-dump");
    assert_eq!(session, "q");
    let events = pfdbg_obs::jsonl::parse_jsonl(&dump).unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e.str("event").unwrap()).collect();

    // The ring replays the failure end-to-end: the SEU strike and its
    // turn first, then one fruitless scrub per attempt, then the
    // quarantine verdict as the final event.
    let expected_head = ["seu_strike", "turn_start", "turn_commit"];
    assert_eq!(&kinds[..3], &expected_head, "the striking turn leads the dump: {kinds:?}");
    let scrubs = kinds.iter().filter(|k| **k == "scrub_pass").count();
    assert_eq!(scrubs, attempts, "one scrub_pass per repair attempt");
    assert_eq!(*kinds.last().unwrap(), "quarantine", "quarantine is the terminal event");
    assert!(!kinds.contains(&"scrub_repair"), "the dead port never repaired anything");
    let quarantined = events.last().unwrap().num("value").unwrap();
    assert!(quarantined > 0.0, "quarantine event counts the frames it condemned");

    // The on-demand dump of the same session agrees with the automatic
    // snapshot (nothing happened since).
    assert_eq!(manager.flight_dump("q").unwrap(), dump);
    let h = manager.health("q").unwrap();
    assert_eq!(h.verdict.as_str(), "degraded");
    assert!(h.needs_resync);
}

/// A turn that rolls back also auto-dumps, with `turn_rollback` as the
/// terminal event — the post-mortem for a commit that exhausted every
/// escalation level.
#[test]
fn rollback_leaves_an_automatic_dump() {
    let manager = SessionManager::with_chaos(
        Arc::new(build_engine()),
        16,
        Some(IcapFaultConfig { write_error_rate: 1.0, seed: 5, ..IcapFaultConfig::default() }),
        CommitPolicy { max_retries: 0, ..CommitPolicy::default() },
    );
    manager.open("r").unwrap();
    let n = manager.engine().n_params();
    let mut params = BitVec::zeros(n);
    params.set(0, true);
    let err = manager.select("r", &params).unwrap_err();
    assert!(err.contains("rolled back"), "{err}");

    let (session, dump) = manager.last_flight_dump().expect("rollback must auto-dump");
    assert_eq!(session, "r");
    let events = pfdbg_obs::jsonl::parse_jsonl(&dump).unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e.str("event").unwrap()).collect();
    assert_eq!(kinds.first().copied(), Some("turn_start"));
    assert_eq!(kinds.last().copied(), Some("turn_rollback"));
}
