//! Crash-consistent session restore over real TCP.
//!
//! A server started with a journal dir records every turn. Killing it
//! mid-session and restarting over the same dir must restore the
//! session by re-driving its journal — and the restored session's next
//! select must be bit-identical to an uninterrupted golden run, at 1,
//! 2, and 8 SCG evaluation threads. A restart under *different* chaos
//! flags must refuse the restore loudly instead.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_emu::{IcapFaultConfig, SeuConfig};
use pfdbg_pconf::icap::CommitPolicy;
use pfdbg_pconf::scrub::ScrubPolicy;
use pfdbg_serve::server::{Server, ServerConfig, ServerHandle};
use pfdbg_serve::session::{Engine, SessionManager};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn build_engine(threads: usize) -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 6,
        n_outputs: 4,
        n_gates: 24,
        depth: 4,
        n_latches: 2,
        seed: 91,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        4,
    )
    .unwrap();
    let off =
        pfdbg_core::offline(&inst, &OfflineConfig { k: 4, ..OfflineConfig::default() }).unwrap();
    let mut scg = off.scg.unwrap();
    scg.set_threads(threads);
    Engine::new(inst, scg, off.layout.unwrap(), off.icap)
}

/// The chaos environment both runs share: flaky transport + SEUs, so
/// the restore has to reproduce retries, escalations, and upsets — not
/// just a clean bit diff.
fn chaos_manager(threads: usize, journal: Option<PathBuf>, seu_rate: f64) -> SessionManager {
    let mut manager = SessionManager::with_chaos_scrub(
        Arc::new(build_engine(threads)),
        16,
        Some(IcapFaultConfig::uniform(0.04, 0xFA_417)),
        CommitPolicy { jitter_seed: 0x117_7E4, ..CommitPolicy::default() },
        Some(SeuConfig { rate: seu_rate, burst: 2, seed: 0x5E05_E5E0 }),
        ScrubPolicy::default(),
    );
    if let Some(dir) = journal {
        manager.set_journal_dir(dir);
    }
    manager
}

fn start(threads: usize, journal: Option<PathBuf>, seu_rate: f64) -> ServerHandle {
    let manager = chaos_manager(threads, journal, seu_rate);
    Server::start(manager, ServerConfig { workers: 2, ..ServerConfig::default() }).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn roundtrip(&mut self, line: &str) -> pfdbg_obs::jsonl::Event {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let mut events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        assert_eq!(events.len(), 1, "one reply per request: {reply:?}");
        events.remove(0)
    }
}

fn is_ok(ev: &pfdbg_obs::jsonl::Event) -> bool {
    ev.fields.get("ok") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true))
}

/// Deterministic parameter string for turn `t` (LSB first).
fn params_for(t: usize, n: usize) -> String {
    (0..n).map(|i| if (t * 7 + i * 13).is_multiple_of(3) { '1' } else { '0' }).collect()
}

/// Drive `turns` interleaved select/scrub operations on session `s`.
/// Returns each select reply so callers can compare runs.
fn drive(client: &mut Client, n_params: usize, turns: usize) -> Vec<pfdbg_obs::jsonl::Event> {
    let mut replies = Vec::new();
    for t in 0..turns {
        if t % 3 == 2 {
            let ev = client.roundtrip("{\"op\":\"scrub\",\"session\":\"s\"}");
            assert!(is_ok(&ev), "scrub failed: {ev:?}");
        } else {
            let ev = client.roundtrip(&format!(
                "{{\"op\":\"select\",\"session\":\"s\",\"params\":\"{}\"}}",
                params_for(t, n_params)
            ));
            // A rolled-back turn is a legitimate recorded outcome under
            // a flaky transport; both runs must roll back identically,
            // so keep the reply either way.
            replies.push(ev);
        }
    }
    replies
}

/// The reply fields that must be bit-identical between an uninterrupted
/// run and a crash-restored one. Wall-clock times and cache hits are
/// interleaving-dependent and excluded; the modeled transfer/verify
/// times, retry ladder, and diff sizes are all deterministic.
fn replay_fields(ev: &pfdbg_obs::jsonl::Event) -> Vec<(String, String)> {
    ["ok", "params", "turn", "bits_changed", "frames_changed", "retries", "degradations", "error"]
        .iter()
        .filter_map(|k| ev.fields.get(*k).map(|v| (k.to_string(), format!("{v:?}"))))
        .collect()
}

fn restore_matches_golden_at(threads: usize) {
    let dir =
        std::env::temp_dir().join(format!("pfdbg-serve-replay-{}-t{threads}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    const TURNS: usize = 7;

    // Golden: one uninterrupted run, TURNS ops then one more select.
    let golden_server = start(threads, None, 0.01);
    let mut golden = Client::connect(golden_server.local_addr());
    let open = golden.roundtrip("{\"op\":\"open\",\"session\":\"s\"}");
    assert!(is_ok(&open), "{open:?}");
    let n_params = open.num("n_params").unwrap() as usize;
    drive(&mut golden, n_params, TURNS);
    let golden_next = golden.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"s\",\"params\":\"{}\"}}",
        params_for(TURNS, n_params)
    ));
    golden_server.shutdown();

    // Run A: same chaos, journaling on; killed after TURNS ops with no
    // clean close — the journal ends mid-session.
    let a = start(threads, Some(dir.clone()), 0.01);
    let mut ca = Client::connect(a.local_addr());
    assert!(is_ok(&ca.roundtrip("{\"op\":\"open\",\"session\":\"s\"}")));
    drive(&mut ca, n_params, TURNS);
    a.shutdown();

    // Run B: a fresh server over the same journal dir. Opening the
    // same session name restores it from the journal.
    let b = start(threads, Some(dir.clone()), 0.01);
    let mut cb = Client::connect(b.local_addr());
    let reopened = cb.roundtrip("{\"op\":\"open\",\"session\":\"s\"}");
    assert!(is_ok(&reopened), "restore failed: {reopened:?}");
    let restored_next = cb.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"s\",\"params\":\"{}\"}}",
        params_for(TURNS, n_params)
    ));
    assert_eq!(
        replay_fields(&golden_next),
        replay_fields(&restored_next),
        "threads={threads}: restored session diverged from the uninterrupted golden\n\
         golden:   {golden_next:?}\nrestored: {restored_next:?}"
    );
    let stats = cb.roundtrip("{\"op\":\"stats\"}");
    assert!(stats.num("restores").unwrap() >= 1.0, "{stats:?}");
    assert!(stats.num("journal_records").unwrap() >= 1.0, "{stats:?}");
    b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_session_matches_uninterrupted_golden_serial() {
    restore_matches_golden_at(1);
}

#[test]
fn restored_session_matches_uninterrupted_golden_2_threads() {
    restore_matches_golden_at(2);
}

#[test]
fn restored_session_matches_uninterrupted_golden_8_threads() {
    restore_matches_golden_at(8);
}

/// Restarting with different chaos flags must refuse the restore with
/// a divergence report, not silently serve a session whose journal it
/// cannot reproduce.
#[test]
fn restore_under_different_chaos_is_refused() {
    let dir =
        std::env::temp_dir().join(format!("pfdbg-serve-replay-divergence-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let a = start(1, Some(dir.clone()), 0.02);
    let mut ca = Client::connect(a.local_addr());
    let open = ca.roundtrip("{\"op\":\"open\",\"session\":\"s\"}");
    let n_params = open.num("n_params").unwrap() as usize;
    drive(&mut ca, n_params, 6);
    a.shutdown();

    // Different SEU rate: the recorded flip counts can't reproduce.
    let b = start(1, Some(dir.clone()), 0.3);
    let mut cb = Client::connect(b.local_addr());
    let reopened = cb.roundtrip("{\"op\":\"open\",\"session\":\"s\"}");
    assert!(!is_ok(&reopened), "restore should have diverged: {reopened:?}");
    let msg = reopened.str("error").unwrap_or("");
    assert!(msg.contains("diverged"), "unexpected error: {msg}");
    b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The `record` and `replay` verbs: a live session reports its journal,
/// and the server re-drives that journal to a bit-identical verdict.
#[test]
fn record_and_replay_verbs_round_trip() {
    let dir = std::env::temp_dir().join(format!("pfdbg-serve-replay-verbs-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let server = start(2, Some(dir.clone()), 0.01);
    let mut c = Client::connect(server.local_addr());
    let open = c.roundtrip("{\"op\":\"open\",\"session\":\"s\"}");
    let n_params = open.num("n_params").unwrap() as usize;
    drive(&mut c, n_params, 5);

    let rec = c.roundtrip("{\"op\":\"record\",\"session\":\"s\"}");
    assert!(is_ok(&rec), "{rec:?}");
    let path = rec.str("path").unwrap().to_string();
    let file = rec.str("file").unwrap().to_string();
    assert!(rec.num("records").unwrap() >= 1.0);
    assert!(path.ends_with(&file), "file {file:?} should be the basename of {path:?}");

    // Replay takes the journal-dir-relative name `record` returned.
    let rep = c.roundtrip(&format!("{{\"op\":\"replay\",\"path\":\"{file}\"}}"));
    assert!(is_ok(&rep), "{rep:?}");
    assert_eq!(
        rep.fields.get("identical"),
        Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)),
        "server replay diverged: {rep:?}"
    );

    // The verb is confined to the journal directory: absolute paths
    // (even correct ones) and traversal out of the directory are
    // rejected before any file IO happens.
    let abs = c.roundtrip(&format!("{{\"op\":\"replay\",\"path\":\"{path}\"}}"));
    assert!(!is_ok(&abs), "absolute replay path should be refused: {abs:?}");
    assert!(abs.str("error").unwrap_or("").contains("relative"), "{abs:?}");
    let traversal = c.roundtrip(&format!("{{\"op\":\"replay\",\"path\":\"../{file}\"}}"));
    assert!(!is_ok(&traversal), "traversal replay path should be refused: {traversal:?}");
    assert!(traversal.str("error").unwrap_or("").contains(".."), "{traversal:?}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
