//! Shared machinery for the benchmark harness: runs the paper's
//! experiments over the calibrated suite and renders the tables and
//! figures. Each `src/bin/*.rs` regenerates one artifact:
//!
//! | binary             | artifact |
//! |--------------------|----------|
//! | `table1`           | Table I — area in #LUTs |
//! | `table2`           | Table II — logic depth |
//! | `fig7`             | Fig. 7 — area bar chart |
//! | `fig3`             | Fig. 3 — dedicated vs integrated debug area |
//! | `compile_time`     | §V.C.1 — wires / CLBs / place&route runtime |
//! | `runtime_overhead` | §V.C.2 — specialization vs reconfiguration, amortization |
//! | `debug_cycle`      | Fig. 4 — conventional vs proposed debug-cycle latency |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pfdbg_circuits::{paper_row, PaperRow};
use pfdbg_core::{compare_mappers, InstrumentConfig, MapperComparison, PAPER_K};
use pfdbg_util::stats::geomean;

/// Observability flags shared by the `src/bin` experiment drivers: the
/// same `--profile` / `--trace-out <f.jsonl>` pair the `pfdbg` CLI
/// takes, feeding the same global [`pfdbg_obs`] registry.
pub struct ObsFlags {
    profile: bool,
    trace_out: Option<String>,
    rest: Vec<String>,
}

/// Scan the process arguments for `--profile` and `--trace-out`,
/// enabling the observability layer when either is present. Call
/// [`ObsFlags::finish`] at the end of `main`.
pub fn obs_init() -> ObsFlags {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = match args.iter().position(|a| a == "--profile") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
        args.remove(i);
        if i < args.len() {
            args.remove(i)
        } else {
            String::new()
        }
    });
    let trace_out = trace_out.filter(|p| !p.is_empty());
    if profile || trace_out.is_some() {
        pfdbg_obs::set_enabled(true);
    }
    ObsFlags { profile, trace_out, rest: args }
}

impl ObsFlags {
    /// The process arguments with the observability flags removed —
    /// what the experiment driver should parse its positionals from.
    pub fn rest(&self) -> &[String] {
        &self.rest
    }

    /// Emit the span report and/or trace file requested on the command
    /// line (a no-op when neither flag was given).
    pub fn finish(&self) {
        if self.profile {
            eprint!("{}", pfdbg_obs::registry().render_tree());
        }
        if let Some(path) = &self.trace_out {
            match std::fs::write(path, pfdbg_obs::registry().to_jsonl()) {
                Ok(()) => pfdbg_obs::diag(&format!("wrote trace to {path}")),
                Err(e) => pfdbg_obs::diag(&format!("{path}: {e}")),
            }
        }
    }
}

/// One benchmark's measured and published rows side by side.
pub struct TableRow {
    /// Our measurement.
    pub measured: MapperComparison,
    /// The paper's published numbers.
    pub paper: &'static PaperRow,
}

/// Run the Table I/II measurement over the calibrated suite, in parallel
/// (one thread per benchmark).
pub fn run_suite_comparison() -> Vec<TableRow> {
    let suite = pfdbg_circuits::build_all();
    let mut results: Vec<Option<TableRow>> = Vec::with_capacity(suite.len());
    for _ in 0..suite.len() {
        results.push(None);
    }
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (name, nw) in &suite {
            handles.push(s.spawn(move |_| {
                let cmp = compare_mappers(name, nw, &InstrumentConfig::paper(), PAPER_K)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                TableRow { measured: cmp, paper: paper_row(name).expect("known") }
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("benchmark thread panicked"));
        }
    })
    .expect("scope");
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// The aggregate the paper headlines: geometric-mean reduction of the
/// proposed mapping vs the best conventional mapper.
pub fn mean_reduction(rows: &[TableRow]) -> f64 {
    let ratios: Vec<f64> = rows.iter().map(|r| r.measured.reduction_factor()).collect();
    geomean(&ratios).unwrap_or(f64::NAN)
}

/// Same aggregate over the paper's published numbers, for the
/// paper-vs-measured comparison.
pub fn paper_reduction(rows: &[TableRow]) -> f64 {
    let ratios: Vec<f64> = rows
        .iter()
        .map(|r| r.paper.sm_luts.min(r.paper.abc_luts) as f64 / r.paper.proposed_luts.max(1) as f64)
        .collect();
    geomean(&ratios).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reduction_matches_published_claim() {
        // Build rows with dummy measurements to exercise the aggregate
        // over the published numbers alone.
        let rows: Vec<TableRow> = pfdbg_circuits::PAPER_ROWS
            .iter()
            .map(|p| TableRow {
                measured: MapperComparison {
                    name: p.name.into(),
                    gates: p.gates,
                    initial_luts: p.initial_luts,
                    sm_luts: p.sm_luts,
                    abc_luts: p.abc_luts,
                    proposed_luts: p.proposed_luts,
                    tluts: p.tluts,
                    tcons: p.tcons,
                    depth_golden: p.depth_golden as u32,
                    depth_sm: p.depth_sm as u32,
                    depth_abc: p.depth_abc as u32,
                    depth_proposed: p.depth_proposed as u32,
                },
                paper: p,
            })
            .collect();
        let r = paper_reduction(&rows);
        assert!((2.8..4.5).contains(&r), "paper geomean reduction {r}");
        // measured == paper here, so both aggregates agree.
        assert!((mean_reduction(&rows) - r).abs() < 1e-12);
    }
}
