//! Random layered-DAG circuit generation.
//!
//! The ISCAS89 / VTR benchmark files the paper uses are not
//! redistributable here, so the suite (see [`crate::suite`]) is built
//! from a deterministic generator calibrated to each benchmark's
//! published gate count, logic depth and sequential character. The
//! generator produces layered DAGs with Rent-like locality: most fanins
//! come from nearby levels, a few from far back — the structural
//! properties technology mapping and place & route actually respond to.

use pfdbg_netlist::truth::TruthTable;
use pfdbg_netlist::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Primary inputs.
    pub n_inputs: usize,
    /// Primary outputs.
    pub n_outputs: usize,
    /// 2-input gates to create.
    pub n_gates: usize,
    /// Gate-level logic depth to aim for (levels of 2-input gates).
    pub depth: usize,
    /// Latches (0 = purely combinational).
    pub n_latches: usize,
    /// RNG seed — same seed, same circuit.
    pub seed: u64,
}

/// The 2-input gate menu. XOR-rich circuits map into more LUTs, matching
/// arithmetic benchmarks; control benchmarks use more AND/OR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateMix {
    /// Probability of an XOR/XNOR gate.
    pub xor: f64,
    /// Probability of a NAND/NOR gate (vs. plain AND/OR for the rest).
    pub nand: f64,
}

impl Default for GateMix {
    fn default() -> Self {
        GateMix { xor: 0.25, nand: 0.3 }
    }
}

/// Generate a random circuit.
pub fn generate(p: &GenParams) -> Network {
    generate_with_mix(p, GateMix::default())
}

/// Generate with a specific gate mix.
pub fn generate_with_mix(p: &GenParams, mix: GateMix) -> Network {
    assert!(p.n_inputs >= 2, "need at least two inputs");
    assert!(p.depth >= 1, "need at least one level");
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut nw = Network::new(format!("gen_{}", p.seed));

    let inputs: Vec<NodeId> = (0..p.n_inputs).map(|i| nw.add_input(format!("pi{i}"))).collect();

    // Latches are sources during generation; their data is wired at the
    // end from late-level gates (forming state feedback).
    let latches: Vec<NodeId> = (0..p.n_latches)
        .map(|i| nw.add_latch(format!("lat{i}"), inputs[i % inputs.len()], false))
        .collect();

    // Distribute gates over levels: every level gets a base share; level
    // occupancy shrinks slightly toward the output side (typical shape).
    let mut level_sizes = vec![0usize; p.depth];
    let mut remaining = p.n_gates;
    // Reserve one gate per level so the depth target is reachable.
    for s in level_sizes.iter_mut() {
        *s = 1;
        remaining = remaining.saturating_sub(1);
    }
    let mut weights: Vec<f64> =
        (0..p.depth).map(|l| 1.0 - 0.4 * (l as f64 / p.depth.max(1) as f64)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    for (l, w) in weights.iter().enumerate() {
        let take = ((remaining as f64) * w).floor() as usize;
        level_sizes[l] += take;
    }
    // Distribute any rounding remainder to early levels.
    let assigned: usize = level_sizes.iter().sum();
    for l in 0..p.n_gates.saturating_sub(assigned) {
        level_sizes[l % p.depth] += 1;
    }

    // Per-level node pools.
    let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(p.depth + 1);
    let mut level0 = inputs.clone();
    level0.extend(latches.iter().copied());
    levels.push(level0);

    let mut gate_idx = 0usize;
    for l in 1..=p.depth {
        let size = level_sizes[l - 1];
        let mut this_level = Vec::with_capacity(size);
        for g in 0..size {
            // First fanin: from the immediately previous level (forces the
            // level structure); the very first gate of the level *must*
            // pick from level l-1 to guarantee depth.
            let prev = &levels[l - 1];
            let a = prev[rng.gen_range(0..prev.len())];
            // Second fanin: geometric locality over earlier levels.
            let b = loop {
                let back = sample_back(&mut rng, l);
                let pool = &levels[l - back];
                let cand = pool[rng.gen_range(0..pool.len())];
                if cand != a || levels.iter().map(Vec::len).sum::<usize>() < 3 {
                    break cand;
                }
            };
            let table = pick_gate(&mut rng, mix);
            let id = nw.add_table(format!("g{}_{}", l, gate_idx + g), vec![a, b], table);
            this_level.push(id);
        }
        gate_idx += size;
        levels.push(this_level);
    }

    // Wire latch data from the deepest levels (state feedback).
    for (i, &lat) in latches.iter().enumerate() {
        let back = (i % 2).min(p.depth - 1);
        let lvl = &levels[p.depth - back];
        let d = lvl[rng.gen_range(0..lvl.len())];
        nw.set_latch_data(lat, d);
    }

    // Outputs: prefer the last level, then random deep gates.
    let last = levels.last().expect("at least one level");
    for o in 0..p.n_outputs {
        let driver = if o < last.len() {
            last[o]
        } else {
            let l = rng.gen_range(1..=p.depth);
            let pool = &levels[l];
            pool[rng.gen_range(0..pool.len())]
        };
        nw.add_output(format!("po{o}"), driver);
    }

    nw
}

/// Geometric distribution over how many levels back a fanin reaches
/// (1 = previous level), clamped to the available depth.
fn sample_back(rng: &mut StdRng, level: usize) -> usize {
    let mut back = 1;
    while back < level && rng.gen::<f64>() < 0.3 {
        back += 1;
    }
    back
}

fn pick_gate(rng: &mut StdRng, mix: GateMix) -> TruthTable {
    use pfdbg_netlist::truth::gates::*;
    let r: f64 = rng.gen();
    if r < mix.xor {
        if rng.gen() {
            xor2()
        } else {
            xnor2()
        }
    } else if r < mix.xor + mix.nand {
        if rng.gen() {
            nand2()
        } else {
            nor2()
        }
    } else if rng.gen() {
        and2()
    } else {
        or2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GenParams {
        GenParams { n_inputs: 10, n_outputs: 6, n_gates: 200, depth: 8, n_latches: 4, seed: 42 }
    }

    #[test]
    fn generates_requested_size() {
        let nw = generate(&params());
        nw.validate().unwrap();
        assert_eq!(nw.n_tables(), 200);
        assert_eq!(nw.n_inputs(), 10);
        assert_eq!(nw.n_outputs(), 6);
        assert_eq!(nw.n_latches(), 4);
    }

    #[test]
    fn depth_matches_target() {
        for depth in [3usize, 8, 15] {
            let p = GenParams { depth, ..params() };
            let nw = generate(&p);
            assert_eq!(nw.depth().unwrap() as usize, depth, "target {depth}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&params());
        let b = generate(&params());
        assert_eq!(pfdbg_netlist::blif::write(&a), pfdbg_netlist::blif::write(&b));
        let c = generate(&GenParams { seed: 43, ..params() });
        assert_ne!(pfdbg_netlist::blif::write(&a), pfdbg_netlist::blif::write(&c));
    }

    #[test]
    fn combinational_when_no_latches() {
        let p = GenParams { n_latches: 0, ..params() };
        let nw = generate(&p);
        assert_eq!(nw.n_latches(), 0);
        nw.validate().unwrap();
    }

    #[test]
    fn is_simulatable_and_blif_roundtrips() {
        let nw = generate(&params());
        let text = pfdbg_netlist::blif::write(&nw);
        let back = pfdbg_netlist::blif::parse(&text).unwrap();
        assert!(pfdbg_netlist::sim::comb_equivalent(&nw, &back, 16, 5).unwrap());
    }

    #[test]
    fn gate_mix_changes_composition() {
        let p = params();
        let xor_heavy = generate_with_mix(&p, GateMix { xor: 0.9, nand: 0.05 });
        let and_heavy = generate_with_mix(&p, GateMix { xor: 0.0, nand: 0.0 });
        let count_xor = |nw: &Network| {
            nw.nodes()
                .filter(|(_, n)| {
                    n.table().is_some_and(|t| {
                        *t == pfdbg_netlist::truth::gates::xor2()
                            || *t == pfdbg_netlist::truth::gates::xnor2()
                    })
                })
                .count()
        };
        assert!(count_xor(&xor_heavy) > count_xor(&and_heavy) + 50);
    }
}
