//! Content-addressed on-disk artifact store for offline-flow outputs.
//!
//! The offline generic stage (synthesis → TCONMap → TPaR → generalized
//! bitstream) is the expensive half of the paper's flow; it only needs
//! to run once per design. This crate persists its products — the
//! instrumented netlist, mapping statistics, bitstream layout, BDD
//! manager and generalized bitstream — as a single versioned,
//! checksummed binary artifact keyed by a content fingerprint of the
//! inputs, so that a second compile of the same design is a cache hit
//! that skips the flow entirely.
//!
//! No external serialization dependency (see DESIGN.md §6): the format
//! is a hand-rolled little-endian encoding in the same spirit as the
//! flat JSONL writer in `pfdbg-obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod bytes;
pub mod journal;
pub mod store;

pub use artifact::{Artifact, CompiledDesign, SerializedPort, FORMAT_VERSION, MAGIC};
pub use journal::{
    read_journal, scan_journal_bytes, JournalAppender, JournalScan, JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use store::{ArtifactStore, CacheOutcome};
