//! Static timing analysis over a placed-and-routed design.
//!
//! The paper's §V.B argues the proposed flow leaves the critical path
//! delay at the original circuit's level (the debug infrastructure lives
//! in routing and is inactive unless selected). This module computes
//! routed critical paths so that claim can be checked quantitatively:
//! arrival times propagate through LUT levels and the *actual routed
//! wire lengths* of each net, with tunable nets contributing their
//! worst-case selected alternative.

use crate::pack::{Block, PackedDesign};
use crate::route::RoutedDesign;
use crate::tpar::TparResult;
use pfdbg_arch::{RRGraph, RRKind, RRNode};
use pfdbg_map::ElemKind;
use pfdbg_netlist::{Network, NodeId};
use pfdbg_util::FxHashMap;

/// Delay model parameters (arbitrary but consistent units; the defaults
/// approximate a 65 nm-era FPGA in nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct DelayModel {
    /// LUT logic delay.
    pub lut: f64,
    /// One unit-length wire segment.
    pub wire_segment: f64,
    /// One programmable switch (switch box or connection box hop).
    pub switch: f64,
    /// Local intra-cluster feedback (crossbar) delay.
    pub local: f64,
    /// Flip-flop clock-to-Q plus setup allocation.
    pub ff: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel { lut: 0.8, wire_segment: 0.35, switch: 0.15, local: 0.25, ff: 0.5 }
    }
}

/// One timing-path report.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Critical path delay in model units (ns by default).
    pub critical_delay: f64,
    /// LUT levels on the critical path.
    pub levels: u32,
    /// Net names on the critical path, source to sink.
    pub path: Vec<String>,
}

/// Per-(net, sink-block) routed delay: wire segments + switches along the
/// branch path that reaches the sink pin, worst case over alternatives.
fn net_sink_delays(
    packed: &PackedDesign,
    routed: &RoutedDesign,
    rrg: &RRGraph,
    model: &DelayModel,
) -> FxHashMap<(usize, usize), f64> {
    let mut out: FxHashMap<(usize, usize), f64> = FxHashMap::default();
    for nr in &routed.routes {
        // For each branch (alternative), walk its edges accumulating the
        // arrival delay per node, then read the delay at each sink pin.
        for branch in &nr.branches {
            let mut arrive: FxHashMap<RRNode, f64> = FxHashMap::default();
            for &(from, to) in &branch.edges {
                let base = arrive.get(&from).copied().unwrap_or(0.0);
                let hop = model.switch
                    + match rrg.node(to).kind {
                        RRKind::ChanX(_) | RRKind::ChanY(_) => model.wire_segment,
                        _ => 0.0,
                    };
                let t = base + hop;
                let entry = arrive.entry(to).or_insert(t);
                if *entry < t {
                    *entry = t;
                }
            }
            for (&sink_block, &pin) in &nr.sink_pins {
                if let Some(&d) = arrive.get(&pin) {
                    let key = (nr.net, sink_block);
                    let entry = out.entry(key).or_insert(d);
                    // Tunable nets: the slowest selectable source bounds
                    // the timing closure.
                    if *entry < d {
                        *entry = d;
                    }
                }
            }
        }
        let _ = packed;
    }
    out
}

/// Analyze the routed design's critical path.
///
/// `mapped`/`kinds` are the mapped network and element kinds that were
/// packed (TCON nodes add no logic delay themselves — their cost *is*
/// the routed wire they dissolve into, which the net delays capture).
pub fn analyze(
    mapped: &Network,
    kinds: &FxHashMap<NodeId, ElemKind>,
    result: &TparResult,
    model: &DelayModel,
) -> Result<TimingReport, String> {
    let routed = &result.routed;
    let rrg = &result.rrg;
    let packed = &result.packed;
    let sink_delay = net_sink_delays(packed, routed, rrg, model);

    // Map each netlist node to its packed block (CLBs via clusters, pads
    // via names) so net lookups work.
    let mut block_of: FxHashMap<NodeId, usize> = FxHashMap::default();
    for (bi, block) in packed.blocks.iter().enumerate() {
        match block {
            Block::Clb(ci) => {
                for ble in &packed.clusters[*ci].bles {
                    if let Some(l) = ble.lut {
                        block_of.insert(l, bi);
                    }
                    if let Some(l) = ble.latch {
                        block_of.insert(l, bi);
                    }
                }
            }
            Block::InPad(name) => {
                if let Some(id) = mapped.find(name) {
                    block_of.insert(id, bi);
                }
            }
            Block::OutPad(_) => {}
        }
    }

    // Net index by driver node.
    let mut net_of_driver: FxHashMap<NodeId, usize> = FxHashMap::default();
    for (ni, net) in packed.nets.iter().enumerate() {
        net_of_driver.insert(net.driver, ni);
    }

    // Resolve the wire delay from `driver` (a netlist node) into
    // `consumer_block`. TCON chains: the consumer sees the TCON tree's
    // net; ordinary signals their own net. Missing entries (intra-cluster
    // connections) cost the local crossbar delay.
    let wire_delay = |driver: NodeId, consumer_block: Option<usize>| -> f64 {
        let Some(cb) = consumer_block else { return model.local };
        match net_of_driver.get(&driver) {
            Some(&ni) => sink_delay.get(&(ni, cb)).copied().unwrap_or(model.local),
            None => model.local,
        }
    };

    // Arrival-time propagation in topological order.
    let order = mapped.topo_order().map_err(|n| format!("cycle at {n:?}"))?;
    let mut arrival: FxHashMap<NodeId, f64> = FxHashMap::default();
    let mut level: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut pred: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    for (id, node) in mapped.nodes() {
        if node.is_latch() {
            arrival.insert(id, model.ff);
        }
    }
    for id in order {
        let node = mapped.node(id);
        if !node.is_table() {
            continue;
        }
        let is_tcon = kinds.get(&id) == Some(&ElemKind::TCon);
        let my_block = block_of.get(&id).copied();
        let mut best = 0.0f64;
        let mut best_pred = None;
        let mut best_level = 0u32;
        for &f in &node.fanins {
            if mapped.node(f).is_param {
                continue; // configuration, not a signal path
            }
            let a = arrival.get(&f).copied().unwrap_or(0.0) + wire_delay(f, my_block);
            if a >= best {
                best = a;
                best_pred = Some(f);
                best_level = level.get(&f).copied().unwrap_or(0);
            }
        }
        // TCONs are routing: their own delay is in the wire numbers.
        let logic = if is_tcon { 0.0 } else { model.lut };
        arrival.insert(id, best + logic);
        level.insert(id, best_level + u32::from(!is_tcon));
        if let Some(p) = best_pred {
            pred.insert(id, p);
        }
    }

    // Endpoints: primary outputs and latch data pins.
    let mut worst: Option<(f64, NodeId)> = None;
    let note = |d: f64, n: NodeId, worst: &mut Option<(f64, NodeId)>| {
        if worst.is_none_or(|(w, _)| d > w) {
            *worst = Some((d, n));
        }
    };
    for port in mapped.outputs() {
        let d = arrival.get(&port.driver).copied().unwrap_or(0.0);
        note(d, port.driver, &mut worst);
    }
    for (_, node) in mapped.nodes() {
        if node.is_latch() {
            let f = node.fanins[0];
            let d = arrival.get(&f).copied().unwrap_or(0.0) + model.ff;
            note(d, f, &mut worst);
        }
    }
    let Some((critical_delay, end)) = worst else {
        return Err("design has no timing endpoints".into());
    };

    // Backtrace the critical path.
    let mut path = Vec::new();
    let mut cur = end;
    loop {
        path.push(mapped.node(cur).name.clone());
        match pred.get(&cur) {
            Some(&p) => cur = p,
            None => break,
        }
    }
    path.reverse();
    Ok(TimingReport { critical_delay, levels: level.get(&end).copied().unwrap_or(0), path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpar::{tpar, TparConfig};
    use pfdbg_map::{map, map_parameterized_network, MapperKind};
    use pfdbg_synth::{Aig, Lit};

    fn chain_design(n: usize) -> Network {
        // A LUT chain that cannot collapse (each stage has an extra
        // primary output).
        let mut aig = Aig::new("chain");
        let mut prev = aig.add_input("x", false);
        let extra: Vec<Lit> = (0..n).map(|i| aig.add_input(format!("e{i}"), false)).collect();
        for (i, &e) in extra.iter().enumerate() {
            let nxt = aig.xor(prev, e);
            aig.add_output(format!("tap{i}"), nxt);
            prev = nxt;
        }
        aig.add_output("y", prev);
        let mapping = map(&aig, 4, MapperKind::PriorityCuts);
        mapping.to_network(&aig).0
    }

    #[test]
    fn longer_chains_have_longer_critical_paths() {
        let model = DelayModel::default();
        let mut prev_delay = 0.0;
        for n in [2usize, 6] {
            let nw = chain_design(n);
            let kinds = FxHashMap::default();
            let result = tpar(&nw, &kinds, &TparConfig::default()).unwrap();
            let report = analyze(&nw, &kinds, &result, &model).unwrap();
            assert!(report.critical_delay > prev_delay, "n={n}: {report:?}");
            assert!(!report.path.is_empty());
            prev_delay = report.critical_delay;
        }
    }

    #[test]
    fn instrumentation_leaves_critical_path_at_logic_level() {
        // Compare the plain design's critical delay with the
        // parameterized-instrumented one: the mux network must not push
        // it up by more than routing noise.
        let design = pfdbg_circuits_like_design();
        let kinds0 = FxHashMap::default();
        let r0 = tpar(&design, &kinds0, &TparConfig::default()).unwrap();
        let t0 = analyze(&design, &kinds0, &r0, &DelayModel::default()).unwrap();

        // Instrument (mapped-netlist instrumentation, as in the flow).
        let mut inst = design.clone();
        let observed: Vec<NodeId> =
            inst.nodes().filter(|(_, n)| n.is_table()).map(|(id, _)| id).collect();
        let s0 = inst.add_input("$sel_p0_b0");
        inst.set_param(s0, true);
        use pfdbg_netlist::truth::gates;
        let m = inst.add_table("$mux_p0", vec![observed[0], observed[1], s0], gates::mux21());
        inst.add_output("$trace0", m);
        let mp = map_parameterized_network(&inst, 4).unwrap();
        let r1 = tpar(&mp.network, &mp.kinds, &TparConfig::default()).unwrap();
        let t1 = analyze(&mp.network, &mp.kinds, &r1, &DelayModel::default()).unwrap();

        assert!(
            t1.critical_delay <= t0.critical_delay * 1.8 + 2.0,
            "instrumented {:.2} vs plain {:.2}",
            t1.critical_delay,
            t0.critical_delay
        );
    }

    fn pfdbg_circuits_like_design() -> Network {
        let mut nw = Network::new("d");
        use pfdbg_netlist::truth::gates;
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let c = nw.add_input("c");
        let g1 = nw.add_table("g1", vec![a, b], gates::and2());
        let g2 = nw.add_table("g2", vec![g1, c], gates::xor2());
        let g3 = nw.add_table("g3", vec![g2, a], gates::or2());
        nw.add_output("y", g3);
        nw
    }

    #[test]
    fn tcon_nodes_add_no_logic_delay() {
        // A pure selector between two inputs: critical delay is wires
        // only (below one LUT + wire combination of a logic design).
        let mut nw = Network::new("sel");
        use pfdbg_netlist::truth::gates;
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let s = nw.add_input("s");
        nw.set_param(s, true);
        let m = nw.add_table("m", vec![a, b, s], gates::mux21());
        nw.add_output("$trace0", m);
        let mp = map_parameterized_network(&nw, 4).unwrap();
        assert_eq!(mp.stats.tcons, 1);
        let result = tpar(&mp.network, &mp.kinds, &TparConfig::default()).unwrap();
        let report = analyze(&mp.network, &mp.kinds, &result, &DelayModel::default()).unwrap();
        assert_eq!(report.levels, 0, "{report:?}");
    }
}
