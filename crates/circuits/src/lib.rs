//! Benchmark circuits: a deterministic random-circuit generator and the
//! suite calibrated to the paper's eight ISCAS89/VTR benchmarks (with the
//! published Table I/II numbers kept alongside for paper-vs-measured
//! reporting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod structured;
pub mod suite;

pub use gen::{generate, generate_with_mix, GateMix, GenParams};
pub use structured::{array_multiplier, counter, lfsr, ripple_adder};
pub use suite::{build, build_all, names, paper_row, PaperRow, PAPER_ROWS};
