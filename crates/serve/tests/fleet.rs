//! Shard-fleet failure-containment tests: a panicking select handler
//! must cost exactly its own session (the shard thread and every other
//! session keep serving), and background scrubs must keep landing on a
//! session that is being hammered with selects — the starvation the old
//! `try_lock`-and-skip scrub walk allowed.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_emu::SeuConfig;
use pfdbg_pconf::{CommitPolicy, ScrubPolicy};
use pfdbg_serve::server::{Server, ServerConfig};
use pfdbg_serve::session::{Engine, FleetOptions, SessionManager};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_engine() -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 8,
        n_outputs: 6,
        n_gates: 40,
        depth: 5,
        n_latches: 2,
        seed: 33,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        6,
    )
    .unwrap();
    let off = pfdbg_core::offline(&inst, &OfflineConfig::default()).unwrap();
    Engine::new(inst, off.scg.unwrap(), off.layout.unwrap(), off.icap)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    fn roundtrip(&mut self, line: &str) -> pfdbg_obs::jsonl::Event {
        self.writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let mut events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        assert_eq!(events.len(), 1, "one reply per request: {reply:?}");
        events.remove(0)
    }
}

fn is_ok(ev: &pfdbg_obs::jsonl::Event) -> bool {
    ev.fields.get("ok") == Some(&pfdbg_obs::jsonl::JsonValue::Bool(true))
}

fn err_of(ev: &pfdbg_obs::jsonl::Event) -> &str {
    assert!(!is_ok(ev), "expected an error reply, got {ev:?}");
    ev.str("error").unwrap_or("")
}

/// Regression for the old shared-queue pool, where one panicking
/// handler poisoned the connection-queue mutex and every later request
/// died on `PoisonError`. Now a panic unwinds into the shard loop's
/// `catch_unwind`: the suspect session is dropped, the panic is
/// counted, and the same shard thread keeps serving its other sessions.
#[test]
fn panicking_handler_costs_one_session_not_the_server() {
    std::env::set_var("PFDBG_TEST_PANIC", "1");
    let manager = SessionManager::with_fleet(
        Arc::new(build_engine()),
        16,
        None,
        CommitPolicy::default(),
        None,
        ScrubPolicy::default(),
        FleetOptions { shards: 2, inbox_capacity: 64 },
    );
    // Place the doomed session and a healthy one on the SAME shard, so
    // surviving proves the shard thread itself rode out the panic.
    let doomed = (0..)
        .map(|i| format!("panic-{i}"))
        .find(|n| manager.shard_index(n) == manager.shard_index("steady"))
        .unwrap();
    let handle =
        Server::start(manager, ServerConfig { workers: 2, ..ServerConfig::default() }).unwrap();
    let mut c = Client::connect(handle.local_addr());

    assert!(is_ok(&c.roundtrip(&format!("{{\"op\":\"open\",\"session\":\"{doomed}\"}}"))));
    assert!(is_ok(&c.roundtrip("{\"op\":\"open\",\"session\":\"steady\"}")));
    let n = handle.sessions().engine().n_params();
    let params = "0".repeat(n);

    // The injected panic surfaces as an error reply on this request —
    // not a hung connection, not a dead server.
    let r = c.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"{doomed}\",\"params\":\"{params}\"}}"
    ));
    assert!(err_of(&r).contains("panicked"), "want panic containment reply, got {r:?}");

    // The panicking session is gone (its state is suspect) ...
    let r = c.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"{doomed}\",\"params\":\"{params}\"}}"
    ));
    assert!(err_of(&r).contains("no such session"));

    // ... but its shard-mate serves on, on the same thread.
    let r = c.roundtrip(&format!(
        "{{\"op\":\"select\",\"session\":\"steady\",\"params\":\"{params}\"}}"
    ));
    assert!(is_ok(&r), "shard-mate must keep serving after the panic: {r:?}");

    let stats = c.roundtrip("{\"op\":\"stats\"}");
    assert!(is_ok(&stats));
    assert!(stats.num("handler_panics").unwrap() >= 1.0);
    assert_eq!(stats.num("sessions"), Some(1.0), "exactly the doomed session dropped");

    // The name is free again: a fresh open rebuilds clean state.
    assert!(is_ok(&c.roundtrip(&format!("{{\"op\":\"open\",\"session\":\"{doomed}\"}}"))));
    handle.shutdown();
}

/// Regression for scrub starvation: the old walk `try_lock`ed each
/// session and skipped it when busy, so a session under continuous
/// selects could dodge scrubbing forever. Scrubs now ride the same
/// shard inbox as selects and interleave with them, so a hot session
/// still gets its passes.
#[test]
fn hot_session_still_gets_scrubbed() {
    std::env::set_var("PFDBG_TEST_PANIC", "1");
    let seu = SeuConfig::from_env().unwrap_or(SeuConfig { rate: 1.0, burst: 1, seed: 0x5EED });
    let manager = SessionManager::with_chaos_scrub(
        Arc::new(build_engine()),
        16,
        None,
        CommitPolicy::default(),
        Some(seu),
        ScrubPolicy::default(),
    );
    let handle = Server::start(
        manager,
        ServerConfig { workers: 2, scrub_interval_ms: 20.0, ..ServerConfig::default() },
    )
    .unwrap();
    let mut c = Client::connect(handle.local_addr());
    assert!(is_ok(&c.roundtrip("{\"op\":\"open\",\"session\":\"hot\"}")));
    let n = handle.sessions().engine().n_params();
    let vectors = ["0".repeat(n), "1".to_string() + &"0".repeat(n - 1)];

    // Hammer the session with selects for ~0.5 s — many scrub-walk
    // periods — without ever pausing the connection.
    let t0 = Instant::now();
    let mut turn = 0usize;
    while t0.elapsed() < Duration::from_millis(500) {
        let params = &vectors[turn % 2];
        let r = c.roundtrip(&format!(
            "{{\"op\":\"select\",\"session\":\"hot\",\"params\":\"{params}\",\
             \"deadline_ms\":10000}}"
        ));
        assert!(is_ok(&r), "select under scrub pressure failed: {r:?}");
        turn += 1;
    }
    assert!(turn >= 4, "hammer loop barely ran; timing assumptions broken");

    // At a 20 ms cadence at least one pass must have landed on the hot
    // session despite the constant select stream.
    let h = c.roundtrip("{\"op\":\"health\",\"session\":\"hot\"}");
    assert!(is_ok(&h));
    let scrubs = h.num("scrubs").unwrap();
    assert!(scrubs >= 1.0, "hot session starved: zero scrub passes in {turn} turns");
    // And with a rate-1.0 SEU channel, scrubbing found real upsets.
    assert!(h.num("upsets_detected").unwrap() >= 1.0);
    assert!(handle.sessions().scrub_stats().passes >= 1);
    handle.shutdown();
}
