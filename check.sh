#!/bin/sh
# Repository gate: formatting, lints, and the full test suite.
# Usage: ./check.sh
set -eu

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "all checks passed"
