//! Criterion benches for place & route (the §V.C.1 runtime claim:
//! parameterized designs place & route faster because they are
//! smaller): TPaR on the parameterized mapping vs the conventional
//! mapping of the same instrumented design.

use criterion::{criterion_group, criterion_main, Criterion};
use pfdbg_circuits::{generate, GenParams};
use pfdbg_core::{instrument, prepare_instrumented, InstrumentConfig, PAPER_K};
use pfdbg_map::{map, map_parameterized_network, MapperKind};
use pfdbg_pr::{tpar, TparConfig};
use pfdbg_synth::synthesize;

fn small_design() -> pfdbg_netlist::Network {
    generate(&GenParams {
        n_inputs: 12,
        n_outputs: 8,
        n_gates: 80,
        depth: 6,
        n_latches: 4,
        seed: 31,
    })
}

fn bench_tpar(c: &mut Criterion) {
    let design = small_design();

    // Parameterized: mapped with TCONMap.
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        PAPER_K,
    )
    .expect("prepare");
    let mp = map_parameterized_network(&inst.network, PAPER_K).expect("tconmap");

    // Conventional: same instrumented design, muxes as LUTs.
    let inst2 =
        instrument(&design, &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 });
    let mut conv = inst2.network.clone();
    let params: Vec<_> = conv.params().collect();
    for p in params {
        conv.set_param(p, false);
    }
    let aig = synthesize(&conv).expect("synthesis");
    let conv_mapping = map(&aig, PAPER_K, MapperKind::PriorityCuts);
    let (conv_nw, conv_kinds) = conv_mapping.to_network(&aig);

    let mut g = c.benchmark_group("place_and_route");
    g.sample_size(10);
    g.bench_function("parameterized", |b| {
        b.iter(|| {
            tpar(&mp.network, &mp.kinds, &TparConfig::default()).expect("routes").stats.wires_used
        })
    });
    g.bench_function("conventional", |b| {
        b.iter(|| {
            tpar(&conv_nw, &conv_kinds, &TparConfig::default()).expect("routes").stats.wires_used
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tpar);
criterion_main!(benches);
