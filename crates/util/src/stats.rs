//! Summary statistics for the benchmark harness.
//!
//! The paper reports per-benchmark numbers plus aggregate claims
//! ("3,5X smaller on average"). Averages over ratios are geometric means,
//! so [`geomean`] is provided alongside the usual moments.

/// Arithmetic mean. Returns `None` on an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean. Returns `None` on an empty slice or any non-positive
/// entry (a ratio of zero would make the product degenerate).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Population standard deviation. Returns `None` on an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Nearest-rank `p`-th percentile (0..=100): the sample of rank
/// `ceil(p/100 · N)` (1-based; `p = 0` selects the minimum) on the
/// sorted data. Returns `None` on an empty slice, out-of-range `p`, or
/// NaN input (a NaN has no rank, so no percentile is well defined).
///
/// Nearest-rank rather than linear interpolation, deliberately: a
/// reported percentile is always an *observed* sample — a single
/// element is its own percentile at every `p`, and duplicate-heavy
/// inputs (say 99 equal latencies and one outlier) never yield a
/// fabricated value between two modes. This is also the rank
/// definition `pfdbg_obs::Histogram` uses, so the two percentile paths
/// agree to within half a histogram bucket.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs rejected above"));
    // Clamp defensively: float rounding at p = 100 must not step past
    // the last element.
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Median (50th percentile, nearest-rank — the lower of the two middle
/// samples on even-length input).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// A running min/max/mean accumulator that avoids storing samples.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Accumulator { n: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feed one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples, `None` if no samples.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }

    /// Minimum sample, `None` if no samples.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum sample, `None` if no samples.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((stddev(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geomean_of_ratios() {
        // geomean(2, 8) = 4
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.0)); // lower middle sample
        assert_eq!(median(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(percentile(&xs, 75.0), Some(3.0));
        assert_eq!(percentile(&xs, 76.0), Some(4.0));
        assert_eq!(percentile(&xs, 101.0), None);
    }

    #[test]
    fn percentile_single_element_and_duplicates() {
        // A single element is its own percentile everywhere.
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5));
        }
        // Duplicate-heavy input never fabricates a between-modes value:
        // every percentile is an observed sample.
        let mut xs = vec![1.0; 99];
        xs.push(1000.0);
        assert_eq!(percentile(&xs, 50.0), Some(1.0));
        assert_eq!(percentile(&xs, 99.0), Some(1.0));
        assert_eq!(percentile(&xs, 99.5), Some(1000.0));
        assert_eq!(percentile(&xs, 100.0), Some(1000.0));
        for p in [0.0, 10.0, 37.3, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = percentile(&xs, p).unwrap();
            assert!(xs.contains(&v), "p{p} -> {v} is not a sample");
        }
    }

    #[test]
    fn percentile_rejects_nan_instead_of_panicking() {
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 50.0), None);
        assert_eq!(percentile(&[f64::NAN], 0.0), None);
        // Infinities still sort fine.
        assert_eq!(percentile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 50.0), Some(0.0));
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.mean(), None);
        for x in [3.0, 1.0, 2.0] {
            acc.add(x);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.min(), Some(1.0));
        assert_eq!(acc.max(), Some(3.0));
        assert_eq!(acc.mean(), Some(2.0));
    }
}
