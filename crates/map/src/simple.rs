//! SimpleMap: a naive structural technology mapper, used as the first
//! conventional baseline in the paper's Table I/II.
//!
//! The algorithm greedily absorbs single-fanout fanin cones into a LUT
//! until the leaf budget K is exhausted — no cut enumeration, no cost
//! function, no reconvergence exploitation. This matches the behaviour of
//! the "SimpleMAP" structural mapper of the TLUT tool flow the paper
//! builds on: fast, but noticeably worse in area and depth than a
//! cut-based mapper.

use crate::mapper::{build_mapping, Mapping};
use pfdbg_synth::{Aig, AigKind, AigNode};
use pfdbg_util::IdVec;

/// Run SimpleMap with K-input LUTs.
pub fn simple_map(aig: &Aig, k: usize) -> Mapping {
    assert!(k >= 2, "K must be at least 2");
    let fanouts = aig.fanout_counts();

    // For every AND node, greedily grow a leaf set: start from the two
    // fanins; while a leaf is a single-fanout AND node and expanding it
    // keeps the set within K, expand it (deepest-first).
    let mut leaves_of: IdVec<AigNode, Vec<AigNode>> = IdVec::filled(Vec::new(), aig.n_nodes());
    let levels = aig.levels();

    for (id, entry) in aig.iter() {
        if let AigKind::And(a, b) = entry.kind {
            let mut leaves = vec![a.node(), b.node()];
            leaves.sort();
            leaves.dedup();
            loop {
                // Candidate to expand: the deepest single-fanout AND leaf.
                let cand = leaves
                    .iter()
                    .copied()
                    .filter(|&l| matches!(aig.node(l).kind, AigKind::And(..)) && fanouts[l] == 1)
                    .max_by_key(|&l| levels[l]);
                let Some(c) = cand else { break };
                let (ca, cb) = match aig.node(c).kind {
                    AigKind::And(x, y) => (x.node(), y.node()),
                    _ => unreachable!("filtered to ANDs"),
                };
                let mut expanded = leaves.clone();
                expanded.retain(|&l| l != c);
                for n in [ca, cb] {
                    if !expanded.contains(&n) {
                        expanded.push(n);
                    }
                }
                if expanded.len() > k {
                    // Try the other candidates before giving up: mark this
                    // one unexpandable by breaking (greedy single-candidate
                    // policy keeps SimpleMap simple — and weak, as
                    // intended).
                    break;
                }
                expanded.sort();
                leaves = expanded;
            }
            leaves_of[id] = leaves;
        }
    }

    // Derive the cover from outputs / latch next-states.
    let mut required: Vec<AigNode> = Vec::new();
    let mut seen: IdVec<AigNode, bool> = IdVec::filled(false, aig.n_nodes());
    let push = |n: AigNode, seen: &mut IdVec<AigNode, bool>, req: &mut Vec<AigNode>| {
        if !seen[n] && matches!(aig.node(n).kind, AigKind::And(..)) {
            seen[n] = true;
            req.push(n);
        }
    };
    for (_, lit) in &aig.outputs {
        push(lit.node(), &mut seen, &mut required);
    }
    for latch in aig.latch_ids() {
        push(aig.latch_next(latch).node(), &mut seen, &mut required);
    }

    let mut chosen: Vec<(AigNode, Vec<AigNode>, usize)> = Vec::new();
    let mut i = 0;
    while i < required.len() {
        let node = required[i];
        i += 1;
        let leaves = leaves_of[node].clone();
        for &leaf in &leaves {
            if !seen[leaf] && matches!(aig.node(leaf).kind, AigKind::And(..)) {
                seen[leaf] = true;
                required.push(leaf);
            }
        }
        chosen.push((node, leaves, 0));
    }

    build_mapping(aig, k, chosen, false, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapperKind};
    use pfdbg_netlist::sim::comb_equivalent;
    use pfdbg_synth::{to_network as aig_to_network, Lit};

    fn random_logic(seed: u64, n_inputs: usize, n_ands: usize) -> Aig {
        // Deterministic pseudo-random AIG.
        let mut aig = Aig::new("rand");
        let mut lits: Vec<Lit> =
            (0..n_inputs).map(|i| aig.add_input(format!("i{i}"), false)).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_ands {
            let a = lits[(next() as usize) % lits.len()];
            let b = lits[(next() as usize) % lits.len()];
            let a = if next() % 2 == 0 { a } else { a.not() };
            let b = if next() % 2 == 0 { b } else { b.not() };
            let y = aig.and(a, b);
            lits.push(y);
        }
        // Expose the last few as outputs.
        for (i, l) in lits.iter().rev().take(4).enumerate() {
            aig.add_output(format!("o{i}"), *l);
        }
        aig
    }

    #[test]
    fn simple_map_is_functionally_correct() {
        for seed in [3u64, 17, 99] {
            let aig = random_logic(seed, 8, 60);
            let mapping = simple_map(&aig, 4);
            let (nw, _) = mapping.to_network(&aig);
            nw.validate().unwrap();
            let golden = aig_to_network(&aig);
            assert!(comb_equivalent(&golden, &nw, 64, seed).unwrap(), "seed {seed} mismatch");
        }
    }

    #[test]
    fn simple_map_respects_k() {
        let aig = random_logic(5, 10, 120);
        for k in [2usize, 4, 6] {
            let mapping = simple_map(&aig, k);
            for e in &mapping.elements {
                assert!(e.leaves.len() <= k);
            }
        }
    }

    #[test]
    fn priority_cuts_not_worse_than_simple() {
        // The whole point of the baselines: ABC-style mapping should need
        // at most as many LUTs on sizeable circuits.
        let mut worse = 0;
        for seed in [1u64, 2, 3, 4, 5] {
            let aig = random_logic(seed, 12, 300);
            let simple = simple_map(&aig, 6);
            let abc = map(&aig, 6, MapperKind::PriorityCuts);
            if abc.lut_area() > simple.lut_area() {
                worse += 1;
            }
        }
        assert!(worse <= 1, "priority cuts lost to SimpleMap {worse}/5 times");
    }
}
