//! Foundation utilities shared by every crate in the parameterized FPGA
//! debugging suite.
//!
//! This crate deliberately has no dependency on the rest of the workspace.
//! It provides:
//!
//! * [`id`] — zero-cost strongly typed `u32` index newtypes (`define_id!`)
//!   and dense [`id::IdVec`] maps keyed by them,
//! * [`hash`] — an FxHash-style fast hasher plus `FxHashMap`/`FxHashSet`
//!   aliases (hot CAD data structures are keyed by small integers, where
//!   SipHash is needlessly slow),
//! * [`bitvec`] — a compact, fixed-width bit vector used for truth tables,
//!   configuration frames and signal-selection masks,
//! * [`par`] — a zero-dependency scoped-thread data-parallel layer
//!   (chunked work queue, deterministic merge order, `PFDBG_THREADS`
//!   policy) driving the offline flow's hot paths,
//! * [`stats`] — summary statistics (mean/geomean/percentiles) used by the
//!   benchmark harness,
//! * [`table`] — an aligned plain-text table writer used to regenerate the
//!   paper's tables and figures without external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod hash;
pub mod id;
pub mod par;
pub mod stats;
pub mod table;

pub use bitvec::BitVec;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use id::IdVec;
