//! TPlace: simulated-annealing placement (VPR-style).
//!
//! Blocks (CLBs and I/O pads) are assigned to grid slots minimizing the
//! sum over nets of half-perimeter wirelength (HPWL) scaled by the
//! standard fanout correction factor. The annealing schedule follows
//! VPR: automatic initial temperature from move-cost statistics,
//! adaptive cooling based on the acceptance rate, and a shrinking range
//! limit. Tunable nets contribute the bounding box over *all* their
//! alternative sources plus sinks — keeping the selectable signals close
//! is exactly what lets them share routing.

use crate::pack::{Block, PackedDesign};
use pfdbg_arch::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grid location: tile plus sub-slot (BLE-irrelevant; sub distinguishes
/// pad slots on I/O tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Tile x.
    pub x: u16,
    /// Tile y.
    pub y: u16,
    /// Sub-slot within the tile (always 0 for CLBs; pad index for I/O).
    pub sub: u16,
}

/// A placement: block index → location.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per-block location (same order as `PackedDesign::blocks`).
    pub locs: Vec<Loc>,
    /// Final bounding-box cost.
    pub cost: f64,
    /// Annealing moves attempted.
    pub moves: usize,
}

/// Placement configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlaceConfig {
    /// RNG seed (deterministic placements for reproducible experiments).
    pub seed: u64,
    /// Moves per temperature step, per block (VPR's `inner_num` ≈ 10
    /// scaled; we use `moves_per_block * n_blocks^(4/3)` overall).
    pub effort: f64,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig { seed: 0xF00D, effort: 1.0 }
    }
}

/// The classic VPR fanout correction for HPWL.
fn crossing_factor(terminals: usize) -> f64 {
    const Q: [f64; 46] = [
        1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493, 1.4974, 1.5455,
        1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015,
        2.0379, 2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271, 2.3583,
        2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625,
        2.6842,
    ];
    if terminals == 0 {
        0.0
    } else if terminals <= 45 {
        Q[terminals]
    } else {
        2.6842 + 0.02616 * (terminals - 45) as f64
    }
}

struct NetGeometry {
    /// Block terminals (sources' blocks + sinks), deduplicated.
    terminals: Vec<u32>,
    weight: f64,
}

/// Run simulated-annealing placement.
pub fn place(design: &PackedDesign, dev: &Device, cfg: &PlaceConfig) -> Result<Placement, String> {
    let n_blocks = design.blocks.len();
    let clb_slots: Vec<Loc> =
        dev.clb_tiles().map(|(x, y)| Loc { x: x as u16, y: y as u16, sub: 0 }).collect();
    let io_slots: Vec<Loc> = dev
        .io_tiles()
        .flat_map(|(x, y)| {
            (0..dev.spec.io_capacity).map(move |s| Loc { x: x as u16, y: y as u16, sub: s as u16 })
        })
        .collect();

    let clb_blocks: Vec<usize> =
        (0..n_blocks).filter(|&b| matches!(design.blocks[b], Block::Clb(_))).collect();
    let pad_blocks: Vec<usize> =
        (0..n_blocks).filter(|&b| !matches!(design.blocks[b], Block::Clb(_))).collect();
    if clb_blocks.len() > clb_slots.len() {
        return Err(format!(
            "design needs {} CLBs but device has {}",
            clb_blocks.len(),
            clb_slots.len()
        ));
    }
    if pad_blocks.len() > io_slots.len() {
        return Err(format!(
            "design needs {} pads but device has {}",
            pad_blocks.len(),
            io_slots.len()
        ));
    }

    // Net geometries.
    let nets: Vec<NetGeometry> = design
        .nets
        .iter()
        .map(|n| {
            let mut terminals: Vec<u32> = n.sources.iter().map(|s| s.block as u32).collect();
            for &s in &n.sinks {
                terminals.push(s as u32);
            }
            terminals.sort_unstable();
            terminals.dedup();
            let weight = crossing_factor(terminals.len());
            NetGeometry { terminals, weight }
        })
        .collect();
    // Nets touching each block.
    let mut nets_of_block: Vec<Vec<u32>> = vec![Vec::new(); n_blocks];
    for (ni, n) in nets.iter().enumerate() {
        for &t in &n.terminals {
            nets_of_block[t as usize].push(ni as u32);
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Initial placement: round-robin assignment.
    let mut locs: Vec<Loc> = vec![Loc { x: 0, y: 0, sub: 0 }; n_blocks];
    let mut slot_used_clb = vec![usize::MAX; clb_slots.len()];
    let mut slot_used_io = vec![usize::MAX; io_slots.len()];
    for (i, &b) in clb_blocks.iter().enumerate() {
        locs[b] = clb_slots[i];
        slot_used_clb[i] = b;
    }
    for (i, &b) in pad_blocks.iter().enumerate() {
        locs[b] = io_slots[i];
        slot_used_io[i] = b;
    }

    let bbox_cost = |ni: usize, locs: &[Loc]| -> f64 {
        let n = &nets[ni];
        let mut min_x = u16::MAX;
        let mut max_x = 0u16;
        let mut min_y = u16::MAX;
        let mut max_y = 0u16;
        for &t in &n.terminals {
            let l = locs[t as usize];
            min_x = min_x.min(l.x);
            max_x = max_x.max(l.x);
            min_y = min_y.min(l.y);
            max_y = max_y.max(l.y);
        }
        if n.terminals.is_empty() {
            return 0.0;
        }
        n.weight * ((max_x - min_x) as f64 + (max_y - min_y) as f64)
    };

    let total_cost = |locs: &[Loc]| -> f64 { (0..nets.len()).map(|ni| bbox_cost(ni, locs)).sum() };
    let mut cost = total_cost(&locs);

    // Move generator: pick a random block; swap with a random slot of its
    // class (occupied -> swap, free -> move) within the range limit.
    let grid_span = dev.width.max(dev.height) as f64;
    let mut range = grid_span;
    let moves_per_temp = ((cfg.effort * 10.0) * (n_blocks.max(8) as f64).powf(4.0 / 3.0)) as usize;

    // Initial temperature: std-dev of random move deltas (VPR).
    let movable: Vec<usize> = (0..n_blocks).collect();
    if movable.is_empty() || nets.is_empty() {
        return Ok(Placement { locs, cost, moves: 0 });
    }

    // Helper executing one random move attempt. Returns delta and undo
    // closure state: (block_a, old_a, maybe block_b, old_b).
    /// `(delta cost, moved block, its old loc, swapped (block, old loc))`.
    type MoveOutcome = (f64, usize, Loc, Option<(usize, Loc)>);
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        rng: &mut StdRng,
        design: &PackedDesign,
        clb_blocks: &[usize],
        pad_blocks: &[usize],
        clb_slots: &[Loc],
        io_slots: &[Loc],
        locs: &mut [Loc],
        nets_of_block: &[Vec<u32>],
        bbox: &dyn Fn(usize, &[Loc]) -> f64,
        range: f64,
    ) -> Option<MoveOutcome> {
        let use_clb = !clb_blocks.is_empty() && (pad_blocks.is_empty() || rng.gen::<f64>() < 0.8);
        let (blocks, slots) =
            if use_clb { (clb_blocks, clb_slots) } else { (pad_blocks, io_slots) };
        if blocks.is_empty() {
            return None;
        }
        let a = blocks[rng.gen_range(0..blocks.len())];
        let la = locs[a];
        // Candidate slot within range.
        let slot = slots[rng.gen_range(0..slots.len())];
        let dist = (slot.x as f64 - la.x as f64).abs() + (slot.y as f64 - la.y as f64).abs();
        if dist > range || slot == la {
            return None;
        }
        // Find occupant of the slot, if any.
        let occupant = blocks.iter().copied().find(|&b| locs[b] == slot && b != a);
        // Affected nets.
        let mut affected: Vec<u32> = nets_of_block[a].clone();
        if let Some(b) = occupant {
            affected.extend_from_slice(&nets_of_block[b]);
        }
        affected.sort_unstable();
        affected.dedup();
        let before: f64 = affected.iter().map(|&ni| bbox(ni as usize, locs)).sum();
        let old_a = locs[a];
        locs[a] = slot;
        let undo_b = occupant.map(|b| {
            let old_b = locs[b];
            locs[b] = old_a;
            (b, old_b)
        });
        let after: f64 = affected.iter().map(|&ni| bbox(ni as usize, locs)).sum();
        let _ = design;
        Some((after - before, a, old_a, undo_b))
    }

    let undo = |locs: &mut [Loc], a: usize, old_a: Loc, b: Option<(usize, Loc)>| {
        if let Some((bb, old_b)) = b {
            locs[bb] = old_b;
        }
        locs[a] = old_a;
    };

    // Estimate initial temperature.
    let mut deltas: Vec<f64> = Vec::new();
    for _ in 0..(n_blocks.max(16)) {
        if let Some((d, a, old_a, b)) = attempt(
            &mut rng,
            design,
            &clb_blocks,
            &pad_blocks,
            &clb_slots,
            &io_slots,
            &mut locs,
            &nets_of_block,
            &bbox_cost,
            range,
        ) {
            undo(&mut locs, a, old_a, b);
            deltas.push(d);
        }
    }
    let mut t = if deltas.is_empty() {
        1.0
    } else {
        let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        (20.0 * var.sqrt()).max(1.0)
    };

    let exit_t = 0.005 * cost.max(1.0) / (nets.len().max(1) as f64);
    let mut total_moves = 0usize;
    while t > exit_t {
        let mut accepted = 0usize;
        let mut attempted = 0usize;
        for _ in 0..moves_per_temp {
            let Some((delta, a, old_a, b)) = attempt(
                &mut rng,
                design,
                &clb_blocks,
                &pad_blocks,
                &clb_slots,
                &io_slots,
                &mut locs,
                &nets_of_block,
                &bbox_cost,
                range,
            ) else {
                continue;
            };
            attempted += 1;
            total_moves += 1;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp();
            if accept {
                cost += delta;
                accepted += 1;
            } else {
                undo(&mut locs, a, old_a, b);
            }
        }
        let alpha = if attempted == 0 {
            0.5
        } else {
            let r = accepted as f64 / attempted as f64;
            // VPR's adaptive schedule.
            if r > 0.96 {
                0.5
            } else if r > 0.8 {
                0.9
            } else if r > 0.15 {
                0.95
            } else {
                0.8
            }
        };
        // Shrink the range limit toward keeping acceptance near 0.44.
        let r = if attempted == 0 { 0.0 } else { accepted as f64 / attempted as f64 };
        range = (range * (1.0 - 0.44 + r)).clamp(1.0, grid_span);
        t *= alpha;
    }

    // Recompute exactly to cancel floating-point drift accumulated by
    // the incremental updates (and sanity-check the bookkeeping).
    let exact = total_cost(&locs);
    debug_assert!(
        (exact - cost).abs() <= 1e-6 * exact.abs().max(1.0),
        "incremental cost drifted: {cost} vs {exact}"
    );
    cost = exact;
    Ok(Placement { locs, cost, moves: total_moves })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{PRNet, SourceRef};
    use pfdbg_arch::{ArchSpec, TileKind};

    /// A synthetic packed design: `n` CLBs in a chain plus 2 pads.
    fn chain_design(n: usize) -> PackedDesign {
        let mut blocks = Vec::new();
        let mut clusters = Vec::new();
        for i in 0..n {
            blocks.push(Block::Clb(i));
            clusters.push(Default::default());
        }
        blocks.push(Block::InPad("in".into()));
        blocks.push(Block::OutPad("out".into()));
        let mut nets = Vec::new();
        // in -> clb0 -> clb1 -> ... -> out
        nets.push(PRNet {
            name: "n_in".into(),
            sources: vec![SourceRef { block: n, ble: 0 }],
            source_nodes: vec![],
            driver: pfdbg_netlist::NodeId(0),
            sinks: vec![0],
            tunable: false,
        });
        for i in 0..n - 1 {
            nets.push(PRNet {
                name: format!("n{i}"),
                sources: vec![SourceRef { block: i, ble: 0 }],
                source_nodes: vec![],
                driver: pfdbg_netlist::NodeId(0),
                sinks: vec![i + 1],
                tunable: false,
            });
        }
        nets.push(PRNet {
            name: "n_out".into(),
            sources: vec![SourceRef { block: n - 1, ble: 0 }],
            source_nodes: vec![],
            driver: pfdbg_netlist::NodeId(0),
            sinks: vec![n + 1],
            tunable: false,
        });
        PackedDesign { blocks, clusters, nets, n_tcons: 0 }
    }

    #[test]
    fn placement_is_legal() {
        let d = chain_design(12);
        let dev = Device::new(ArchSpec::default(), 5, 5);
        let p = place(&d, &dev, &PlaceConfig::default()).unwrap();
        assert_eq!(p.locs.len(), d.blocks.len());
        // CLBs on CLB tiles, pads on IO tiles; no slot double-booked.
        let mut used = std::collections::HashSet::new();
        for (b, loc) in p.locs.iter().enumerate() {
            assert!(used.insert(*loc), "slot {loc:?} double-booked");
            match d.blocks[b] {
                Block::Clb(_) => {
                    assert_eq!(dev.tile(loc.x as usize, loc.y as usize), TileKind::Clb)
                }
                _ => assert_eq!(dev.tile(loc.x as usize, loc.y as usize), TileKind::Io),
            }
        }
    }

    #[test]
    fn annealing_beats_initial_assignment() {
        let d = chain_design(24);
        let dev = Device::new(ArchSpec::default(), 6, 6);
        // Cost of the naive round-robin start: compute by placing with
        // zero effort... instead compare against a random-seed variance:
        let p1 = place(&d, &dev, &PlaceConfig { seed: 1, effort: 1.0 }).unwrap();
        // A chain of 24 blocks on a 6x6 grid: optimal is ~1 per hop. The
        // anneal should get within 3x of that.
        let hops = d.nets.len() as f64;
        assert!(p1.cost < hops * 3.0, "placement cost {} vs ideal ~{hops}", p1.cost);
        assert!(p1.moves > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = chain_design(10);
        let dev = Device::new(ArchSpec::default(), 4, 4);
        let a = place(&d, &dev, &PlaceConfig { seed: 7, effort: 0.5 }).unwrap();
        let b = place(&d, &dev, &PlaceConfig { seed: 7, effort: 0.5 }).unwrap();
        assert_eq!(a.locs, b.locs);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn rejects_oversubscribed_device() {
        let d = chain_design(30);
        let dev = Device::new(ArchSpec::default(), 2, 2); // 4 CLB slots
        assert!(place(&d, &dev, &PlaceConfig::default()).is_err());
    }

    #[test]
    fn tunable_net_sources_pull_together() {
        // One tunable net with 4 alternative sources and one sink: the
        // cost function must include all sources in the bbox, so the
        // anneal brings them near the sink.
        let mut blocks = Vec::new();
        let mut clusters = Vec::new();
        for i in 0..5 {
            blocks.push(Block::Clb(i));
            clusters.push(Default::default());
        }
        let nets = vec![PRNet {
            name: "tn".into(),
            sources: (0..4).map(|b| SourceRef { block: b, ble: 0 }).collect(),
            source_nodes: vec![],
            driver: pfdbg_netlist::NodeId(0),
            sinks: vec![4],
            tunable: true,
        }];
        let d = PackedDesign { blocks, clusters, nets, n_tcons: 3 };
        let dev = Device::new(ArchSpec::default(), 8, 8);
        let p = place(&d, &dev, &PlaceConfig::default()).unwrap();
        // Bounding box of all five blocks should be small.
        let xs: Vec<u16> = p.locs.iter().map(|l| l.x).collect();
        let ys: Vec<u16> = p.locs.iter().map(|l| l.y).collect();
        let bbox = (xs.iter().max().unwrap() - xs.iter().min().unwrap()) as f64
            + (ys.iter().max().unwrap() - ys.iter().min().unwrap()) as f64;
        assert!(bbox <= 6.0, "tunable net spread out: bbox {bbox}");
    }
}
