//! Bit-parallel netlist simulation.
//!
//! Simulates 64 input vectors at a time (one per bit lane), which is both
//! the standard trick for equivalence checking by random simulation and
//! the engine the emulation crate builds on. Sequential state (latches) is
//! carried between [`Simulator::step`] calls.

use crate::network::{Network, NodeId, NodeKind};
use pfdbg_util::IdVec;
use std::collections::HashMap;

/// A bit-parallel simulator over a [`Network`].
///
/// Each signal carries a 64-lane word: lane `k` of every signal together
/// forms one independent simulation of the circuit.
pub struct Simulator<'a> {
    nw: &'a Network,
    topo: Vec<NodeId>,
    /// Current value of every node (this cycle).
    values: IdVec<NodeId, u64>,
    /// Latch state (value to present *this* cycle).
    state: IdVec<NodeId, u64>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator; latches take their init values (replicated to
    /// all 64 lanes). Fails if the network has a combinational cycle.
    pub fn new(nw: &'a Network) -> Result<Self, NodeId> {
        let topo = nw.topo_order()?;
        let mut state: IdVec<NodeId, u64> = IdVec::filled(0, nw.n_nodes());
        for (id, node) in nw.nodes() {
            if let NodeKind::Latch { init } = node.kind {
                state[id] = if init { !0 } else { 0 };
            }
        }
        Ok(Simulator { nw, topo, values: IdVec::filled(0, nw.n_nodes()), state })
    }

    /// Reset all latches to their init values.
    pub fn reset(&mut self) {
        for (id, node) in self.nw.nodes() {
            if let NodeKind::Latch { init } = node.kind {
                self.state[id] = if init { !0 } else { 0 };
            }
        }
    }

    /// Evaluate one clock cycle: combinational settle with the given
    /// primary-input words, then clock all latches.
    ///
    /// `inputs` maps each primary input node to its 64-lane word; missing
    /// inputs default to 0.
    pub fn step(&mut self, inputs: &HashMap<NodeId, u64>) {
        self.settle(inputs);
        // Clock: next state = current data input value.
        let mut next: Vec<(NodeId, u64)> = Vec::new();
        for (id, node) in self.nw.nodes() {
            if node.is_latch() {
                next.push((id, self.values[node.fanins[0]]));
            }
        }
        for (id, v) in next {
            self.state[id] = v;
        }
    }

    /// Combinational evaluation only (no latch clocking).
    pub fn settle(&mut self, inputs: &HashMap<NodeId, u64>) {
        for &id in &self.topo {
            let node = self.nw.node(id);
            self.values[id] = match &node.kind {
                NodeKind::Input => inputs.get(&id).copied().unwrap_or(0),
                NodeKind::Const(v) => {
                    if *v {
                        !0
                    } else {
                        0
                    }
                }
                NodeKind::Latch { .. } => self.state[id],
                NodeKind::Table(t) => {
                    // Evaluate the truth table lane-parallel via Shannon
                    // muxing over the fanin words.
                    eval_table_words(t, &node.fanins, &self.values)
                }
            };
        }
    }

    /// The 64-lane word currently on `node` (after the last settle/step).
    pub fn value(&self, node: NodeId) -> u64 {
        self.values[node]
    }

    /// The single-lane boolean on `node` for lane `lane`.
    pub fn value_lane(&self, node: NodeId, lane: usize) -> bool {
        assert!(lane < 64);
        (self.values[node] >> lane) & 1 == 1
    }

    /// Current latch state word.
    pub fn latch_state(&self, latch: NodeId) -> u64 {
        self.state[latch]
    }

    /// Force a latch's state word (used for fault injection in the
    /// emulation layer).
    pub fn set_latch_state(&mut self, latch: NodeId, word: u64) {
        assert!(self.nw.node(latch).is_latch());
        self.state[latch] = word;
    }
}

/// Evaluate a truth table on 64-lane fanin words.
fn eval_table_words(
    t: &crate::truth::TruthTable,
    fanins: &[NodeId],
    values: &IdVec<NodeId, u64>,
) -> u64 {
    // For each lane, the fanin bits select a row. Doing this row-by-row
    // would be 64 table lookups; instead use the standard bit-sliced
    // approach: start from the full table and cofactor by each input word.
    // out = OR over rows r of (table[r] * AND_i (fanin_i XNOR r_i)).
    // For small arity (the common case, K<=6) iterate rows.
    let mut out = 0u64;
    for row in 0..t.n_rows() {
        if !t.bit(row) {
            continue;
        }
        let mut lanes = !0u64;
        for (i, &f) in fanins.iter().enumerate() {
            let w = values[f];
            lanes &= if (row >> i) & 1 == 1 { w } else { !w };
            if lanes == 0 {
                break;
            }
        }
        out |= lanes;
    }
    out
}

/// Check combinational equivalence of two networks by random simulation.
///
/// Both networks must have identically *named* inputs and outputs (order
/// may differ). Latches are treated as cut points: each latch output is
/// driven by a shared pseudo-random stimulus keyed by its name, and each
/// latch data input is treated as an extra observed output — so next-state
/// functions are compared too.
///
/// Runs `n_words` rounds of 64 random vectors. Returns `Ok(false)` on the
/// first mismatch. Returns `Err` if interfaces differ or a cycle exists.
pub fn comb_equivalent(
    a: &Network,
    b: &Network,
    n_words: usize,
    seed: u64,
) -> Result<bool, String> {
    let names_a = interface_names(a);
    let names_b = interface_names(b);
    if names_a != names_b {
        return Err(format!("interface mismatch: {:?} vs {:?}", names_a, names_b));
    }

    let mut sim_a = Simulator::new(a).map_err(|n| format!("cycle in a at {n:?}"))?;
    let mut sim_b = Simulator::new(b).map_err(|n| format!("cycle in b at {n:?}"))?;

    // Simple splitmix64 so this module stays dependency-free.
    let mut rng_state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next_word = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    for _ in 0..n_words {
        // Shared stimulus per *name*.
        let mut stim: HashMap<String, u64> = HashMap::new();
        for name in &names_a.inputs {
            stim.insert(name.clone(), next_word());
        }
        for name in &names_a.latches {
            stim.insert(name.clone(), next_word());
        }
        let apply = |nw: &Network, sim: &mut Simulator, stim: &HashMap<String, u64>| {
            let mut inputs = HashMap::new();
            for id in nw.inputs() {
                inputs.insert(id, stim[&nw.node(id).name]);
            }
            for id in nw.latches() {
                sim.set_latch_state(id, stim[&nw.node(id).name]);
            }
            sim.settle(&inputs);
        };
        apply(a, &mut sim_a, &stim);
        apply(b, &mut sim_b, &stim);

        for port in a.outputs() {
            let pb = b.outputs().iter().find(|p| p.name == port.name).expect("interface checked");
            if sim_a.value(port.driver) != sim_b.value(pb.driver) {
                return Ok(false);
            }
        }
        for la in a.latches() {
            let name = &a.node(la).name;
            let lb = b.find(name).expect("interface checked");
            let da = a.node(la).fanins[0];
            let db = b.node(lb).fanins[0];
            if sim_a.value(da) != sim_b.value(db) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[derive(PartialEq, Eq, Debug)]
struct InterfaceNames {
    inputs: Vec<String>,
    outputs: Vec<String>,
    latches: Vec<String>,
}

fn interface_names(nw: &Network) -> InterfaceNames {
    let mut inputs: Vec<String> = nw.inputs().map(|id| nw.node(id).name.clone()).collect();
    let mut outputs: Vec<String> = nw.outputs().iter().map(|p| p.name.clone()).collect();
    let mut latches: Vec<String> = nw.latches().map(|id| nw.node(id).name.clone()).collect();
    inputs.sort();
    outputs.sort();
    latches.sort();
    InterfaceNames { inputs, outputs, latches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::truth::{gates, TruthTable};

    fn xor_and() -> Network {
        let mut nw = Network::new("t");
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let c = nw.add_input("c");
        let g1 = nw.add_table("g1", vec![a, b], gates::and2());
        let y = nw.add_table("y", vec![g1, c], gates::xor2());
        nw.add_output("y", y);
        nw
    }

    #[test]
    fn settle_computes_combinational_values() {
        let nw = xor_and();
        let mut sim = Simulator::new(&nw).unwrap();
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        let c = nw.find("c").unwrap();
        let y = nw.find("y").unwrap();
        let mut inputs = HashMap::new();
        // Lanes: try all 8 combinations in lanes 0..8.
        let mut wa = 0u64;
        let mut wb = 0u64;
        let mut wc = 0u64;
        for lane in 0..8u64 {
            if lane & 1 == 1 {
                wa |= 1 << lane;
            }
            if lane & 2 == 2 {
                wb |= 1 << lane;
            }
            if lane & 4 == 4 {
                wc |= 1 << lane;
            }
        }
        inputs.insert(a, wa);
        inputs.insert(b, wb);
        inputs.insert(c, wc);
        let mut sim2 = Simulator::new(&nw).unwrap();
        sim.settle(&inputs);
        sim2.settle(&inputs);
        for lane in 0..8 {
            let va = lane & 1 == 1;
            let vb = lane & 2 == 2;
            let vc = lane & 4 == 4;
            assert_eq!(sim.value_lane(y, lane), (va && vb) ^ vc, "lane {lane}");
            assert_eq!(sim2.value_lane(y, lane), sim.value_lane(y, lane));
        }
    }

    #[test]
    fn latch_delays_by_one_cycle() {
        let mut nw = Network::new("d");
        let d = nw.add_input("d");
        let q = nw.add_latch("q", d, false);
        nw.add_output("q", q);
        let mut sim = Simulator::new(&nw).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(d, !0u64);
        sim.step(&inputs); // q shows init (0) during this cycle
        assert_eq!(sim.value(q), 0);
        sim.step(&inputs); // now q shows last cycle's d
        assert_eq!(sim.value(q), !0);
    }

    #[test]
    fn latch_init_respected() {
        let mut nw = Network::new("i");
        let d = nw.add_input("d");
        let q = nw.add_latch("q", d, true);
        nw.add_output("q", q);
        let mut sim = Simulator::new(&nw).unwrap();
        sim.settle(&HashMap::new());
        assert_eq!(sim.value(q), !0);
        sim.reset();
        sim.settle(&HashMap::new());
        assert_eq!(sim.value(q), !0);
    }

    #[test]
    fn equivalence_accepts_same_function() {
        let a = xor_and();
        // Same function, structured differently: y = (a&b) XOR c built as
        // a single 3-input table.
        let mut b = Network::new("t2");
        let ia = b.add_input("a");
        let ib = b.add_input("b");
        let ic = b.add_input("c");
        let t = TruthTable::var(3, 0).and(&TruthTable::var(3, 1)).xor(&TruthTable::var(3, 2));
        let y = b.add_table("y", vec![ia, ib, ic], t);
        b.add_output("y", y);
        assert!(comb_equivalent(&a, &b, 32, 1).unwrap());
    }

    #[test]
    fn equivalence_rejects_different_function() {
        let a = xor_and();
        let mut b = Network::new("t3");
        let ia = b.add_input("a");
        let ib = b.add_input("b");
        let ic = b.add_input("c");
        let g1 = b.add_table("g1", vec![ia, ib], gates::or2()); // OR not AND
        let y = b.add_table("y", vec![g1, ic], gates::xor2());
        b.add_output("y", y);
        assert!(!comb_equivalent(&a, &b, 32, 1).unwrap());
    }

    #[test]
    fn equivalence_checks_next_state_functions() {
        let mk = |invert: bool| {
            let mut nw = Network::new("seq");
            let a = nw.add_input("a");
            let q = nw.add_latch("q", a, false);
            let t = if invert { gates::xnor2() } else { gates::xor2() };
            let d = nw.add_table("d", vec![a, q], t);
            nw.set_latch_data(q, d);
            nw.add_output("out", q);
            nw
        };
        assert!(comb_equivalent(&mk(false), &mk(false), 16, 9).unwrap());
        assert!(!comb_equivalent(&mk(false), &mk(true), 16, 9).unwrap());
    }

    #[test]
    fn equivalence_rejects_interface_mismatch() {
        let a = xor_and();
        let mut b = Network::new("t4");
        let ia = b.add_input("a");
        b.add_output("y", ia);
        assert!(comb_equivalent(&a, &b, 4, 1).is_err());
    }
}
