//! Criterion benches for the Specialized Configuration Generator — the
//! operation bounding every debugging turn (paper: ≤ 50 µs). Measures
//! full specialization and incremental (diff) specialization over
//! generalized bitstreams with increasing numbers of parameterized bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfdbg_arch::{build_rrg, ArchSpec, BitstreamLayout, Device};
use pfdbg_pconf::{BddManager, GeneralizedBuilder, Scg};
use pfdbg_util::BitVec;

/// A synthetic generalized bitstream with `n_bits` parameterized bits
/// over `n_params` parameters (mux-select-minterm-shaped functions, as
/// the real flow produces).
fn synthetic_scg(n_bits: usize, n_params: usize) -> Scg {
    let dev = Device::new(ArchSpec { channel_width: 16, ..Default::default() }, 6, 6);
    let rrg = build_rrg(&dev);
    let layout = BitstreamLayout::new(&dev, &rrg, 1312);
    assert!(layout.n_bits >= n_bits, "device too small for the bit budget");
    let mut m = BddManager::new();
    let mut b = GeneralizedBuilder::new(&layout, n_params);
    let bus: Vec<u32> = (0..n_params as u32).collect();
    for i in 0..n_bits {
        // Each bit on when a 4-bit slice of the bus equals a value —
        // the shape tcon_condition produces for mux trees.
        let s = i % (n_params - 3);
        let slice = &bus[s..s + 4];
        let f = m.minterm(slice, i % 16);
        b.set_func(&m, i, f);
    }
    Scg::new(m, b.build().expect("builder"))
}

fn bench_specialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("scg_specialize");
    for &n_bits in &[500usize, 5_000, 20_000] {
        let scg = synthetic_scg(n_bits, 24);
        let params: BitVec = (0..24).map(|i| i % 3 == 0).collect();
        g.throughput(Throughput::Elements(n_bits as u64));
        g.bench_with_input(BenchmarkId::new("full", n_bits), &scg, |b, scg| {
            b.iter(|| scg.specialize(&params))
        });
        let current = scg.specialize(&BitVec::zeros(24));
        g.bench_with_input(BenchmarkId::new("diff", n_bits), &scg, |b, scg| {
            b.iter(|| scg.specialize_diff(&current, &params).len())
        });
    }
    g.finish();
}

fn bench_bdd_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd");
    g.bench_function("minterm_16", |b| {
        b.iter_with_large_drop(|| {
            let mut m = BddManager::new();
            let bus: Vec<u32> = (0..16).collect();
            (0..256).map(|v| m.minterm(&bus, v)).collect::<Vec<_>>()
        })
    });
    // Evaluation walk: the per-bit cost of the online stage.
    let mut m = BddManager::new();
    let bus: Vec<u32> = (0..16).collect();
    let f = m.minterm(&bus, 0xA5A5 & 0xFFFF);
    let asg: BitVec = (0..16).map(|i| i % 2 == 0).collect();
    g.bench_function("eval_minterm_16", |b| b.iter(|| m.eval(f, &asg)));
    g.finish();
}

criterion_group!(benches, bench_specialize, bench_bdd_ops);
criterion_main!(benches);
