//! A structural-Verilog front end (synthesizable subset).
//!
//! The paper's flow starts from "a synthesizable design"; BLIF covers the
//! benchmark files, and this module covers the common way small designs
//! are actually written. Supported subset:
//!
//! ```verilog
//! module top(input a, input b, input clk, output y);
//!   wire t;
//!   assign t = (a & b) | ~a ^ b;      // & | ^ ~ ?: () and constants
//!   and g1(w, a, b);                  // gate primitives, n-ary
//!   reg q;
//!   always @(posedge clk) q <= t;     // non-blocking DFF
//!   assign y = q ? a : b;
//!   endmodule
//! ```
//!
//! One module per file, scalar nets only (no vectors/parameters/instances
//! — those belong to a real synthesis tool, which this subset does not
//! pretend to replace). `clk` inputs referenced only in `@(posedge …)`
//! are dropped from the netlist (our latch model is implicitly clocked).

use crate::network::{Network, NodeId};
use crate::truth::{gates, TruthTable};
use pfdbg_util::FxHashMap;

/// A Verilog parse/elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Verilog error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, VerilogError> {
    Err(VerilogError { line, message: message.into() })
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(bool), // 1'b0 / 1'b1 / 0 / 1
    Sym(char),    // ( ) , ; = ~ & | ^ ? : @ < #
    KwModule,
    KwEndmodule,
    KwInput,
    KwOutput,
    KwWire,
    KwReg,
    KwAssign,
    KwAlways,
    KwPosedge,
    KwGate(&'static str), // and or nand nor xor xnor not buf
    NonBlocking,          // <=
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, VerilogError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => return err(line, "stray '/'"),
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push((line, Tok::NonBlocking));
                } else {
                    return err(line, "'<' only valid as '<='");
                }
            }
            '(' | ')' | ',' | ';' | '=' | '~' | '&' | '|' | '^' | '?' | ':' | '@' => {
                chars.next();
                toks.push((line, Tok::Sym(c)));
            }
            '0' | '1' => {
                chars.next();
                // Accept 0, 1, 1'b0, 1'b1.
                if chars.peek() == Some(&'\'') {
                    chars.next();
                    let base = chars.next();
                    let digit = chars.next();
                    match (base, digit) {
                        (Some('b' | 'B'), Some('0')) => toks.push((line, Tok::Number(false))),
                        (Some('b' | 'B'), Some('1')) => toks.push((line, Tok::Number(true))),
                        _ => return err(line, "only 1'b0 / 1'b1 literals supported"),
                    }
                } else {
                    toks.push((line, Tok::Number(c == '1')));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = match ident.as_str() {
                    "module" => Tok::KwModule,
                    "endmodule" => Tok::KwEndmodule,
                    "input" => Tok::KwInput,
                    "output" => Tok::KwOutput,
                    "wire" => Tok::KwWire,
                    "reg" => Tok::KwReg,
                    "assign" => Tok::KwAssign,
                    "always" => Tok::KwAlways,
                    "posedge" => Tok::KwPosedge,
                    "and" => Tok::KwGate("and"),
                    "or" => Tok::KwGate("or"),
                    "nand" => Tok::KwGate("nand"),
                    "nor" => Tok::KwGate("nor"),
                    "xor" => Tok::KwGate("xor"),
                    "xnor" => Tok::KwGate("xnor"),
                    "not" => Tok::KwGate("not"),
                    "buf" => Tok::KwGate("buf"),
                    _ => Tok::Ident(ident),
                };
                toks.push((line, tok));
            }
            other => return err(line, format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------------
// Expressions (per assign RHS): precedence ~ > & > ^ > | > ?:
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Net(usize, String),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>), // cond ? t : e
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).or(self.toks.last()).map_or(0, |(l, _)| *l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), VerilogError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => err(line, format!("expected {c:?}, got {other:?}")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, VerilogError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => err(line, format!("expected identifier, got {other:?}")),
        }
    }

    // ternary is lowest precedence
    fn parse_expr(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.parse_or()?;
        if self.peek() == Some(&Tok::Sym('?')) {
            self.next();
            let t = self.parse_expr()?;
            self.expect_sym(':')?;
            let e = self.parse_expr()?;
            return Ok(Expr::Mux(Box::new(cond), Box::new(t), Box::new(e)));
        }
        Ok(cond)
    }

    fn parse_or(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.parse_xor()?;
        while self.peek() == Some(&Tok::Sym('|')) {
            self.next();
            let rhs = self.parse_xor()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::Sym('^')) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, VerilogError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Tok::Sym('&')) {
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, VerilogError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Sym('~')) => Ok(Expr::Not(Box::new(self.parse_unary()?))),
            Some(Tok::Sym('(')) => {
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => Ok(Expr::Net(line, name)),
            Some(Tok::Number(v)) => Ok(Expr::Const(v)),
            other => err(line, format!("unexpected token in expression: {other:?}")),
        }
    }
}

// ----------------------------------------------------------------------
// Elaboration
// ----------------------------------------------------------------------

enum Item {
    Assign { line: usize, lhs: String, rhs: Expr },
    Gate { line: usize, kind: &'static str, out: String, ins: Vec<String> },
    Dff { line: usize, q: String, d: Expr },
}

/// Parse and elaborate a structural-Verilog module into a [`Network`].
pub fn parse(text: &str) -> Result<Network, VerilogError> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };

    // module <name> ( portlist ) ;
    let line = p.line();
    match p.next() {
        Some(Tok::KwModule) => {}
        other => return err(line, format!("expected 'module', got {other:?}")),
    }
    let module_name = p.expect_ident()?;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    p.expect_sym('(')?;
    // Port list: either ANSI style (input a, output y, ...) or plain
    // names (with later input/output declarations).
    let mut plain_ports: Vec<String> = Vec::new();
    loop {
        match p.peek() {
            Some(Tok::Sym(')')) => {
                p.next();
                break;
            }
            Some(Tok::Sym(',')) => {
                p.next();
            }
            Some(Tok::KwInput) => {
                p.next();
                inputs.push(p.expect_ident()?);
            }
            Some(Tok::KwOutput) => {
                p.next();
                outputs.push(p.expect_ident()?);
            }
            Some(Tok::KwWire | Tok::KwReg) => {
                p.next(); // `input wire a` style
            }
            Some(Tok::Ident(_)) => {
                plain_ports.push(p.expect_ident()?);
            }
            other => return err(p.line(), format!("bad port list near {other:?}")),
        }
    }
    p.expect_sym(';')?;

    // Body.
    let mut regs: Vec<String> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    let mut gate_counter = 0usize;
    loop {
        let line = p.line();
        match p.next() {
            Some(Tok::KwEndmodule) => break,
            None => return err(line, "missing endmodule"),
            Some(Tok::KwInput) => {
                inputs.push(p.expect_ident()?);
                while p.peek() == Some(&Tok::Sym(',')) {
                    p.next();
                    inputs.push(p.expect_ident()?);
                }
                p.expect_sym(';')?;
            }
            Some(Tok::KwOutput) => {
                outputs.push(p.expect_ident()?);
                while p.peek() == Some(&Tok::Sym(',')) {
                    p.next();
                    outputs.push(p.expect_ident()?);
                }
                p.expect_sym(';')?;
            }
            Some(Tok::KwWire) => {
                // Declarations carry no information we need (nets appear
                // on use), but consume them.
                p.expect_ident()?;
                while p.peek() == Some(&Tok::Sym(',')) {
                    p.next();
                    p.expect_ident()?;
                }
                p.expect_sym(';')?;
            }
            Some(Tok::KwReg) => {
                regs.push(p.expect_ident()?);
                while p.peek() == Some(&Tok::Sym(',')) {
                    p.next();
                    regs.push(p.expect_ident()?);
                }
                p.expect_sym(';')?;
            }
            Some(Tok::KwAssign) => {
                let lhs = p.expect_ident()?;
                p.expect_sym('=')?;
                let rhs = p.parse_expr()?;
                p.expect_sym(';')?;
                items.push(Item::Assign { line, lhs, rhs });
            }
            Some(Tok::KwGate(kind)) => {
                // [instance name] ( out, in... ) ;
                if matches!(p.peek(), Some(Tok::Ident(_))) {
                    p.next(); // instance name, ignored
                }
                p.expect_sym('(')?;
                let out = p.expect_ident()?;
                let mut ins = Vec::new();
                while p.peek() == Some(&Tok::Sym(',')) {
                    p.next();
                    ins.push(p.expect_ident()?);
                }
                p.expect_sym(')')?;
                p.expect_sym(';')?;
                if ins.is_empty() {
                    return err(line, format!("{kind} gate needs inputs"));
                }
                gate_counter += 1;
                let _ = gate_counter;
                items.push(Item::Gate { line, kind, out, ins });
            }
            Some(Tok::KwAlways) => {
                // always @(posedge <clk>) <q> <= <expr> ;
                p.expect_sym('@')?;
                p.expect_sym('(')?;
                match p.next() {
                    Some(Tok::KwPosedge) => {}
                    other => return err(line, format!("expected posedge, got {other:?}")),
                }
                let _clk = p.expect_ident()?;
                p.expect_sym(')')?;
                let q = p.expect_ident()?;
                match p.next() {
                    Some(Tok::NonBlocking) => {}
                    other => return err(line, format!("expected '<=', got {other:?}")),
                }
                let d = p.parse_expr()?;
                p.expect_sym(';')?;
                items.push(Item::Dff { line, q, d });
            }
            other => return err(line, format!("unexpected item {other:?}")),
        }
    }

    if !plain_ports.is_empty() {
        // Non-ANSI ports must all be declared input/output in the body.
        for port in &plain_ports {
            if !inputs.contains(port) && !outputs.contains(port) {
                return err(0, format!("port {port} never declared input/output"));
            }
        }
    }

    // --- Elaborate.
    let mut nw = Network::new(module_name);
    let mut net: FxHashMap<String, NodeId> = FxHashMap::default();

    // Clock inputs: inputs used only as always-clocks are dropped.
    let clock_only: Vec<String> = {
        let mut used: std::collections::HashSet<&str> = Default::default();
        fn expr_nets<'a>(e: &'a Expr, out: &mut std::collections::HashSet<&'a str>) {
            match e {
                Expr::Net(_, n) => {
                    out.insert(n);
                }
                Expr::Const(_) => {}
                Expr::Not(a) => expr_nets(a, out),
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                    expr_nets(a, out);
                    expr_nets(b, out);
                }
                Expr::Mux(c, t, e2) => {
                    expr_nets(c, out);
                    expr_nets(t, out);
                    expr_nets(e2, out);
                }
            }
        }
        for item in &items {
            match item {
                Item::Assign { rhs, .. } => expr_nets(rhs, &mut used),
                Item::Dff { d, .. } => expr_nets(d, &mut used),
                Item::Gate { ins, .. } => {
                    for i in ins {
                        used.insert(i);
                    }
                }
            }
        }
        inputs
            .iter()
            .filter(|i| !used.contains(i.as_str()) && !outputs.contains(*i))
            .cloned()
            .collect()
    };

    for i in &inputs {
        if clock_only.contains(i) {
            continue;
        }
        net.insert(i.clone(), nw.add_input(i.clone()));
    }
    // Registers first (placeholder data) so feedback elaborates.
    for item in &items {
        if let Item::Dff { line, q, .. } = item {
            if net.contains_key(q) {
                return err(*line, format!("{q} driven twice"));
            }
            if !regs.contains(q) {
                return err(*line, format!("{q} assigned in always but not declared reg"));
            }
            let ph = nw.add_const(nw.fresh_name("$vph"), false);
            net.insert(q.clone(), nw.add_latch(q.clone(), ph, false));
        }
    }

    // Iteratively elaborate combinational items whose inputs are known
    // (allows any declaration order; cycles are reported).
    let mut pending: Vec<&Item> = items.iter().filter(|i| !matches!(i, Item::Dff { .. })).collect();
    while !pending.is_empty() {
        let before = pending.len();
        let mut still: Vec<&Item> = Vec::new();
        for item in pending {
            let ok = match item {
                Item::Assign { line, lhs, rhs } => {
                    if expr_ready(rhs, &net) {
                        if net.contains_key(lhs) {
                            return err(*line, format!("{lhs} driven twice"));
                        }
                        let id = build_expr(&mut nw, rhs, &net, lhs)?;
                        // Give the result the declared net name: rename
                        // the node when it was freshly built for this
                        // assign; alias through a buffer when the RHS is
                        // just another existing net.
                        let id = if nw.node(id).name.starts_with(&format!("{lhs}$")) {
                            nw.rename(id, lhs.clone());
                            id
                        } else if nw.find(lhs).is_none() && !nw.node(id).is_input() {
                            if nw.node(id).name.starts_with('$') {
                                nw.rename(id, lhs.clone());
                                id
                            } else {
                                nw.add_table(lhs.clone(), vec![id], crate::truth::gates::buf1())
                            }
                        } else {
                            nw.add_table(lhs.clone(), vec![id], crate::truth::gates::buf1())
                        };
                        net.insert(lhs.clone(), id);
                        true
                    } else {
                        false
                    }
                }
                Item::Gate { line, kind, out, ins } => {
                    if ins.iter().all(|i| net.contains_key(i)) {
                        if net.contains_key(out) {
                            return err(*line, format!("{out} driven twice"));
                        }
                        let id = build_gate(&mut nw, kind, out, ins, *line, &net)?;
                        net.insert(out.clone(), id);
                        true
                    } else {
                        false
                    }
                }
                Item::Dff { .. } => true,
            };
            if !ok {
                still.push(item);
            }
        }
        if still.len() == before {
            // Find an offending name for the error.
            let what = match still[0] {
                Item::Assign { line, lhs, .. } => (line, lhs.clone()),
                Item::Gate { line, out, .. } => (line, out.clone()),
                Item::Dff { line, q, .. } => (line, q.clone()),
            };
            return err(*what.0, format!("combinational cycle or undriven net feeding {}", what.1));
        }
        pending = still;
    }

    // Wire register data.
    for item in &items {
        if let Item::Dff { line, q, d } = item {
            let data = build_expr(&mut nw, d, &net, &format!("{q}$next"))?;
            let latch = net[q];
            nw.set_latch_data(latch, data);
            let _ = line;
        }
    }

    for o in &outputs {
        let driver = *net
            .get(o)
            .ok_or(VerilogError { line: 0, message: format!("output {o} never driven") })?;
        nw.add_output(o.clone(), driver);
    }
    nw.sweep_dead();
    Ok(nw)
}

fn expr_ready(e: &Expr, net: &FxHashMap<String, NodeId>) -> bool {
    match e {
        Expr::Net(_, n) => net.contains_key(n),
        Expr::Const(_) => true,
        Expr::Not(a) => expr_ready(a, net),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
            expr_ready(a, net) && expr_ready(b, net)
        }
        Expr::Mux(c, t, e2) => expr_ready(c, net) && expr_ready(t, net) && expr_ready(e2, net),
    }
}

fn build_expr(
    nw: &mut Network,
    e: &Expr,
    net: &FxHashMap<String, NodeId>,
    hint: &str,
) -> Result<NodeId, VerilogError> {
    Ok(match e {
        Expr::Net(line, n) => {
            *net.get(n).ok_or(VerilogError { line: *line, message: format!("undriven net {n}") })?
        }
        Expr::Const(v) => {
            let name = nw.fresh_name(if *v { "$vone" } else { "$vzero" });
            nw.add_const(name, *v)
        }
        Expr::Not(a) => {
            let ia = build_expr(nw, a, net, hint)?;
            let name = nw.fresh_name(&format!("{hint}$n"));
            nw.add_table(name, vec![ia], gates::not1())
        }
        Expr::And(a, b) => binop(nw, a, b, net, hint, gates::and2())?,
        Expr::Or(a, b) => binop(nw, a, b, net, hint, gates::or2())?,
        Expr::Xor(a, b) => binop(nw, a, b, net, hint, gates::xor2())?,
        Expr::Mux(c, t, e2) => {
            let ic = build_expr(nw, c, net, hint)?;
            let it = build_expr(nw, t, net, hint)?;
            let ie = build_expr(nw, e2, net, hint)?;
            let name = nw.fresh_name(&format!("{hint}$m"));
            // mux21 order: (d0, d1, sel) -> sel ? d1 : d0.
            nw.add_table(name, vec![ie, it, ic], gates::mux21())
        }
    })
}

fn binop(
    nw: &mut Network,
    a: &Expr,
    b: &Expr,
    net: &FxHashMap<String, NodeId>,
    hint: &str,
    table: TruthTable,
) -> Result<NodeId, VerilogError> {
    let ia = build_expr(nw, a, net, hint)?;
    let ib = build_expr(nw, b, net, hint)?;
    let name = nw.fresh_name(&format!("{hint}$b"));
    Ok(nw.add_table(name, vec![ia, ib], table))
}

fn build_gate(
    nw: &mut Network,
    kind: &str,
    out: &str,
    ins: &[String],
    line: usize,
    net: &FxHashMap<String, NodeId>,
) -> Result<NodeId, VerilogError> {
    let ids: Vec<NodeId> = ins.iter().map(|i| net[i]).collect();
    let (base, invert): (TruthTable, bool) = match kind {
        "and" => (gates::and2(), false),
        "nand" => (gates::and2(), true),
        "or" => (gates::or2(), false),
        "nor" => (gates::or2(), true),
        "xor" => (gates::xor2(), false),
        "xnor" => (gates::xor2(), true),
        "not" => {
            if ids.len() != 1 {
                return err(line, "not takes exactly one input");
            }
            return Ok(nw.add_table(out.to_string(), ids, gates::not1()));
        }
        "buf" => {
            if ids.len() != 1 {
                return err(line, "buf takes exactly one input");
            }
            return Ok(nw.add_table(out.to_string(), ids, gates::buf1()));
        }
        other => return err(line, format!("unknown gate {other}")),
    };
    // N-ary gates: left-fold the 2-input table, then optional inversion
    // folded into the final node.
    if ids.len() < 2 {
        return err(line, format!("{kind} needs at least two inputs"));
    }
    let mut acc = ids[0];
    for (i, &next) in ids[1..].iter().enumerate() {
        let last = i == ids.len() - 2;
        let table = if last && invert { base.not() } else { base.clone() };
        let name = if last { out.to_string() } else { nw.fresh_name(&format!("{out}$g{i}")) };
        acc = nw.add_table(name, vec![acc, next], table);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use std::collections::HashMap;

    fn eval_comb(nw: &Network, assign: &[(&str, bool)], out: &str) -> bool {
        let mut sim = Simulator::new(nw).unwrap();
        let inputs: HashMap<NodeId, u64> =
            assign.iter().map(|(n, v)| (nw.find(n).unwrap(), if *v { 1 } else { 0 })).collect();
        sim.settle(&inputs);
        let port = nw.outputs().iter().find(|p| p.name == out).unwrap();
        sim.value_lane(port.driver, 0)
    }

    #[test]
    fn assign_with_precedence() {
        let nw = parse(
            "module m(input a, input b, input c, output y);\n\
             assign y = a | b & ~c;\nendmodule\n",
        )
        .unwrap();
        nw.validate().unwrap();
        for v in 0..8u32 {
            let (a, b, c) = (v & 1 == 1, v & 2 == 2, v & 4 == 4);
            assert_eq!(
                eval_comb(&nw, &[("a", a), ("b", b), ("c", c)], "y"),
                a | (b & !c),
                "v={v:03b}"
            );
        }
    }

    #[test]
    fn ternary_and_parens() {
        let nw = parse(
            "module m(input s, input a, input b, output y);\n\
             assign y = s ? (a ^ b) : ~a;\nendmodule\n",
        )
        .unwrap();
        for v in 0..8u32 {
            let (s, a, b) = (v & 1 == 1, v & 2 == 2, v & 4 == 4);
            let expect = if s { a ^ b } else { !a };
            assert_eq!(eval_comb(&nw, &[("s", s), ("a", a), ("b", b)], "y"), expect);
        }
    }

    #[test]
    fn gate_primitives_nary() {
        let nw = parse(
            "module m(input a, input b, input c, output y, output z);\n\
             wire t;\n\
             nand g1(t, a, b, c);\n\
             buf g2(y, t);\n\
             xnor g3(z, a, c);\nendmodule\n",
        )
        .unwrap();
        for v in 0..8u32 {
            let (a, b, c) = (v & 1 == 1, v & 2 == 2, v & 4 == 4);
            assert_eq!(eval_comb(&nw, &[("a", a), ("b", b), ("c", c)], "y"), !(a && b && c));
            assert_eq!(eval_comb(&nw, &[("a", a), ("b", b), ("c", c)], "z"), !(a ^ c));
        }
    }

    #[test]
    fn dff_with_feedback() {
        let nw = parse(
            "module t(input clk, input en, output q);\n\
             reg q;\n\
             always @(posedge clk) q <= q ^ en;\nendmodule\n",
        )
        .unwrap();
        nw.validate().unwrap();
        assert_eq!(nw.n_latches(), 1);
        // clk is clock-only and must have been dropped.
        assert!(nw.find("clk").is_none());
        // Toggle behaviour.
        let mut sim = Simulator::new(&nw).unwrap();
        let en = nw.find("en").unwrap();
        let q = nw.find("q").unwrap();
        let mut ins = HashMap::new();
        ins.insert(en, 1u64);
        sim.step(&ins);
        sim.settle(&ins);
        assert!(sim.value_lane(q, 0));
        sim.step(&ins);
        sim.settle(&ins);
        assert!(!sim.value_lane(q, 0));
    }

    #[test]
    fn out_of_order_items_elaborate() {
        let nw = parse(
            "module o(input a, input b, output y);\n\
             assign y = t & a;\n\
             assign t = a ^ b;\nendmodule\n",
        )
        .unwrap();
        for v in 0..4u32 {
            let (a, b) = (v & 1 == 1, v & 2 == 2);
            assert_eq!(eval_comb(&nw, &[("a", a), ("b", b)], "y"), (a ^ b) & a);
        }
    }

    #[test]
    fn constants_and_literals() {
        let nw = parse(
            "module c(input a, output y, output z);\n\
             assign y = a & 1'b1;\n\
             assign z = a | 1;\nendmodule\n",
        )
        .unwrap();
        assert!(eval_comb(&nw, &[("a", true)], "y"));
        assert!(!eval_comb(&nw, &[("a", false)], "y"));
        assert!(eval_comb(&nw, &[("a", false)], "z"));
    }

    #[test]
    fn errors_are_located() {
        let e = parse("module e(input a, output y);\nassign y = a &;\nendmodule\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("module e(input a, output y);\nassign y = a;\nassign y = a;\nendmodule\n")
            .unwrap_err();
        assert!(e.message.contains("driven twice"));
        let e = parse("module e(input a, output y);\nendmodule\n").unwrap_err();
        assert!(e.message.contains("never driven"));
    }

    #[test]
    fn combinational_loop_reported() {
        let e = parse(
            "module l(input a, output y);\n\
             assign y = t | a;\n\
             assign t = y & a;\nendmodule\n",
        )
        .unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn comments_ignored() {
        let nw = parse(
            "module c(input a, output y); // ports\n\
             /* block\n comment */ assign y = ~a;\nendmodule\n",
        )
        .unwrap();
        assert!(eval_comb(&nw, &[("a", false)], "y"));
    }

    #[test]
    fn non_ansi_ports() {
        let nw =
            parse("module n(a, b, y);\ninput a, b;\noutput y;\nassign y = a & b;\nendmodule\n")
                .unwrap();
        assert!(eval_comb(&nw, &[("a", true), ("b", true)], "y"));
    }

    #[test]
    fn whole_flow_accepts_verilog_design() {
        // A tiny design through parse -> instrument-ready network.
        let nw = parse(
            "module top(input clk, input a, input b, output y);\n\
             reg s0, s1;\n\
             wire f;\n\
             assign f = a ^ s1;\n\
             always @(posedge clk) s0 <= f & b;\n\
             always @(posedge clk) s1 <= s0 | a;\n\
             assign y = s1 ^ s0;\nendmodule\n",
        )
        .unwrap();
        nw.validate().unwrap();
        assert_eq!(nw.n_latches(), 2);
        assert_eq!(nw.n_inputs(), 2); // clk dropped
    }
}
