//! Bitstream file serialization.
//!
//! Real flows ship configurations as files; this module defines a small
//! container format for [`crate::Bitstream`]s so specialized
//! configurations can be stored, diffed offline, and reloaded:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PFB1"
//! 4       4     frame_bits  (u32 LE)
//! 8       8     n_bits      (u64 LE)
//! 16      4     CRC-32 of the payload (u32 LE)
//! 20      ...   payload: ceil(n_bits/8) bytes, LSB-first
//! ```

use crate::bitstream::Bitstream;
use pfdbg_util::BitVec;

/// File-format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitfileError {
    /// File too short or wrong magic.
    BadHeader,
    /// Payload shorter than the header promises.
    Truncated,
    /// CRC mismatch (corruption).
    BadChecksum {
        /// CRC stored in the header.
        expected: u32,
        /// CRC of the actual payload.
        actual: u32,
    },
}

impl std::fmt::Display for BitfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitfileError::BadHeader => write!(f, "not a PFB1 bitstream file"),
            BitfileError::Truncated => write!(f, "bitstream file truncated"),
            BitfileError::BadChecksum { expected, actual } => {
                write!(f, "bitstream CRC mismatch: header {expected:08x}, payload {actual:08x}")
            }
        }
    }
}

impl std::error::Error for BitfileError {}

const MAGIC: &[u8; 4] = b"PFB1";

/// CRC-32 (IEEE 802.3, reflected), table-free bitwise implementation —
/// this runs once per file, not per frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize a bitstream (with its frame size, so a reader can address
/// frames without the original layout).
pub fn write(bs: &Bitstream, frame_bits: usize) -> Vec<u8> {
    let n_bits = bs.len();
    let n_bytes = n_bits.div_ceil(8);
    let mut payload = vec![0u8; n_bytes];
    for (w, &word) in bs.words().iter().enumerate() {
        let bytes = word.to_le_bytes();
        for (b, &byte) in bytes.iter().enumerate() {
            let idx = w * 8 + b;
            if idx < n_bytes {
                payload[idx] = byte;
            }
        }
    }
    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(frame_bits as u32).to_le_bytes());
    out.extend_from_slice(&(n_bits as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse a serialized bitstream; returns `(bitstream, frame_bits)`.
pub fn read(data: &[u8]) -> Result<(Bitstream, usize), BitfileError> {
    if data.len() < 20 || &data[0..4] != MAGIC {
        return Err(BitfileError::BadHeader);
    }
    let frame_bits = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) as usize;
    let n_bits = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")) as usize;
    let expected = u32::from_le_bytes(data[16..20].try_into().expect("4 bytes"));
    let n_bytes = n_bits.div_ceil(8);
    let payload = &data[20..];
    if payload.len() < n_bytes {
        return Err(BitfileError::Truncated);
    }
    let payload = &payload[..n_bytes];
    let actual = crc32(payload);
    if actual != expected {
        return Err(BitfileError::BadChecksum { expected, actual });
    }
    let mut bits = BitVec::zeros(n_bits);
    for i in 0..n_bits {
        if (payload[i / 8] >> (i % 8)) & 1 == 1 {
            bits.set(i, true);
        }
    }
    Ok((Bitstream::from_bits(bits), frame_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::BitstreamLayout;
    use crate::device::{ArchSpec, Device};
    use crate::rrg::build_rrg;

    fn sample() -> (Bitstream, BitstreamLayout) {
        let dev = Device::new(ArchSpec { channel_width: 8, ..Default::default() }, 2, 2);
        let rrg = build_rrg(&dev);
        let layout = BitstreamLayout::new(&dev, &rrg, 1312);
        let mut bs = layout.empty_bitstream();
        for i in (0..layout.n_bits).step_by(7) {
            bs.set(i, true);
        }
        (bs, layout)
    }

    #[test]
    fn round_trip_identity() {
        let (bs, layout) = sample();
        let bytes = write(&bs, layout.frame_bits);
        let (back, fb) = read(&bytes).unwrap();
        assert_eq!(fb, layout.frame_bits);
        assert_eq!(back, bs);
    }

    #[test]
    fn corruption_detected() {
        let (bs, layout) = sample();
        let mut bytes = write(&bs, layout.frame_bits);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        match read(&bytes) {
            Err(BitfileError::BadChecksum { .. }) => {}
            other => panic!("expected CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let (bs, layout) = sample();
        let bytes = write(&bs, layout.frame_bits);
        assert_eq!(read(&bytes[..bytes.len() - 5]).unwrap_err(), BitfileError::Truncated);
        assert_eq!(read(&bytes[..10]).unwrap_err(), BitfileError::BadHeader);
        assert_eq!(read(b"NOPE").unwrap_err(), BitfileError::BadHeader);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_bitstream_round_trips() {
        let bs = Bitstream::from_bits(BitVec::zeros(0));
        let bytes = write(&bs, 1312);
        let (back, _) = read(&bytes).unwrap();
        assert_eq!(back.len(), 0);
    }
}
