//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / join are used in
//! this workspace; since Rust 1.63 the standard library's
//! [`std::thread::scope`] provides the same guarantees, so this stub is
//! a thin adapter that preserves crossbeam's call shape (`scope`
//! returning a `Result`, spawn closures receiving the scope).

#![forbid(unsafe_code)]

/// Scoped threads (adapter over [`std::thread::scope`]).
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives
        /// the scope so it could spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let s = Scope { inner: inner_scope };
                f(&s)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike crossbeam this can never observe a
    /// child panic as an `Err` (std propagates it), so the `Result` is
    /// always `Ok` — kept for call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }
}
