//! The calibrated benchmark suite.
//!
//! One entry per benchmark of the paper's Tables I/II (ISCAS89 + VTR),
//! generated to match the published `#Gate` count, logic-depth character
//! and sequential/combinational nature. The published numbers are kept
//! alongside so the harness can print paper-vs-measured for every row.

use crate::gen::{generate_with_mix, GateMix, GenParams};
use pfdbg_netlist::Network;

/// Published per-benchmark numbers from the paper (Tables I and II).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// `#Gate` column of Table I.
    pub gates: usize,
    /// `Initial` (LUTs) column of Table I.
    pub initial_luts: usize,
    /// `SM` (SimpleMap) column of Table I.
    pub sm_luts: usize,
    /// `ABC` column of Table I.
    pub abc_luts: usize,
    /// `Proposed` total of Table I.
    pub proposed_luts: usize,
    /// Proposed TLUT count (parenthesized in Table I).
    pub tluts: usize,
    /// Proposed TCON count (parenthesized in Table I).
    pub tcons: usize,
    /// `Golden` depth column of Table II.
    pub depth_golden: usize,
    /// SimpleMap depth (Table II).
    pub depth_sm: usize,
    /// ABC depth (Table II).
    pub depth_abc: usize,
    /// Proposed depth (Table II).
    pub depth_proposed: usize,
}

/// The paper's eight benchmarks (Tables I & II verbatim).
pub const PAPER_ROWS: [PaperRow; 8] = [
    PaperRow {
        name: "stereov.",
        gates: 215,
        initial_luts: 208,
        sm_luts: 553,
        abc_luts: 590,
        proposed_luts: 190,
        tluts: 8,
        tcons: 332,
        depth_golden: 4,
        depth_sm: 5,
        depth_abc: 5,
        depth_proposed: 4,
    },
    PaperRow {
        name: "diffeq2",
        gates: 419,
        initial_luts: 422,
        sm_luts: 1719,
        abc_luts: 1819,
        proposed_luts: 325,
        tluts: 2,
        tcons: 712,
        depth_golden: 14,
        depth_sm: 15,
        depth_abc: 15,
        depth_proposed: 14,
    },
    PaperRow {
        name: "diffeq1",
        gates: 582,
        initial_luts: 575,
        sm_luts: 2556,
        abc_luts: 2659,
        proposed_luts: 491,
        tluts: 4,
        tcons: 1065,
        depth_golden: 15,
        depth_sm: 15,
        depth_abc: 15,
        depth_proposed: 14,
    },
    PaperRow {
        name: "clma",
        gates: 8381,
        initial_luts: 4461,
        sm_luts: 23694,
        abc_luts: 23219,
        proposed_luts: 7707,
        tluts: 1252,
        tcons: 7935,
        depth_golden: 11,
        depth_sm: 11,
        depth_abc: 11,
        depth_proposed: 11,
    },
    PaperRow {
        name: "or1200",
        gates: 3136,
        initial_luts: 3084,
        sm_luts: 9769,
        abc_luts: 10958,
        proposed_luts: 3004,
        tluts: 9,
        tcons: 2986,
        depth_golden: 27,
        depth_sm: 28,
        depth_abc: 28,
        depth_proposed: 27,
    },
    PaperRow {
        name: "frisc",
        gates: 6002,
        initial_luts: 2747,
        sm_luts: 11517,
        abc_luts: 11412,
        proposed_luts: 5881,
        tluts: 2333,
        tcons: 4910,
        depth_golden: 14,
        depth_sm: 14,
        depth_abc: 14,
        depth_proposed: 14,
    },
    PaperRow {
        name: "s38417",
        gates: 6096,
        initial_luts: 3462,
        sm_luts: 20695,
        abc_luts: 21040,
        proposed_luts: 6204,
        tluts: 1495,
        tcons: 5597,
        depth_golden: 7,
        depth_sm: 8,
        depth_abc: 8,
        depth_proposed: 7,
    },
    PaperRow {
        name: "s38584",
        gates: 6281,
        initial_luts: 2906,
        sm_luts: 20687,
        abc_luts: 21032,
        proposed_luts: 6204,
        tluts: 1495,
        tcons: 5597,
        depth_golden: 7,
        depth_sm: 8,
        depth_abc: 8,
        depth_proposed: 7,
    },
];

/// Generator calibration for one benchmark.
struct Calibration {
    params: GenParams,
    mix: GateMix,
}

/// A 2-input-gate depth that typically maps to the target K=6 LUT depth
/// (a K-LUT absorbs ~2.5 levels of 2-input logic).
fn gate_depth_for_lut_depth(lut_depth: usize) -> usize {
    ((lut_depth as f64) * 2.4).round() as usize
}

fn calibration(row: &PaperRow, seed: u64) -> Calibration {
    // Sequential benchmarks: everything except stereovision-like video
    // pipelines (modest state) — the ISCAS89 s-circuits are heavily
    // sequential, the processors (or1200, frisc) moderately, the
    // diffeq solvers lightly.
    let (latch_frac, mix) = match row.name {
        "stereov." => (0.05, GateMix { xor: 0.15, nand: 0.25 }),
        "diffeq1" | "diffeq2" => (0.08, GateMix { xor: 0.45, nand: 0.15 }),
        "clma" => (0.02, GateMix { xor: 0.10, nand: 0.35 }),
        "or1200" | "frisc" => (0.10, GateMix { xor: 0.25, nand: 0.30 }),
        "s38417" | "s38584" => (0.25, GateMix { xor: 0.10, nand: 0.35 }),
        _ => (0.1, GateMix::default()),
    };
    let n_latches = ((row.gates as f64) * latch_frac) as usize;
    let n_inputs = (row.gates / 35).clamp(8, 128);
    let n_outputs = (row.gates / 50).clamp(4, 96);
    Calibration {
        params: GenParams {
            n_inputs,
            n_outputs,
            n_gates: row.gates,
            depth: gate_depth_for_lut_depth(row.depth_golden),
            n_latches,
            seed,
        },
        mix,
    }
}

/// Benchmark names in paper order.
pub fn names() -> Vec<&'static str> {
    PAPER_ROWS.iter().map(|r| r.name).collect()
}

/// The paper's published row for a benchmark.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_ROWS.iter().find(|r| r.name == name)
}

/// Build (generate) a benchmark by name. Deterministic.
pub fn build(name: &str) -> Option<Network> {
    let row = paper_row(name)?;
    // Seed derived from the name so each benchmark is distinct but
    // stable across runs.
    let seed = name.bytes().fold(0xC0FFEEu64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let cal = calibration(row, seed);
    let mut nw = generate_with_mix(&cal.params, cal.mix);
    nw.name = name.trim_end_matches('.').to_string();
    Some(nw)
}

/// Build the whole suite in paper order.
pub fn build_all() -> Vec<(&'static str, Network)> {
    names().into_iter().map(|n| (n, build(n).expect("known name"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for (name, nw) in build_all() {
            nw.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let row = paper_row(name).unwrap();
            assert_eq!(nw.n_tables(), row.gates, "{name} gate count");
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = build("clma").unwrap();
        let b = build("clma").unwrap();
        assert_eq!(pfdbg_netlist::blif::write(&a), pfdbg_netlist::blif::write(&b));
    }

    #[test]
    fn sequential_character_matches() {
        let s38417 = build("s38417").unwrap();
        let stereov = build("stereov.").unwrap();
        let frac = |nw: &Network| nw.n_latches() as f64 / nw.n_tables() as f64;
        assert!(frac(&s38417) > 2.0 * frac(&stereov), "s38417 should be much more sequential");
    }

    #[test]
    fn depth_scales_with_golden_depth() {
        let shallow = build("stereov.").unwrap(); // golden 4
        let deep = build("or1200").unwrap(); // golden 27
        assert!(deep.depth().unwrap() > 3 * shallow.depth().unwrap());
    }

    #[test]
    fn paper_rows_capture_table1_aggregate() {
        // The paper claims ~3.5x average reduction vs conventional
        // mappers; verify the published numbers actually say that (sanity
        // on our transcription).
        let ratios: Vec<f64> = PAPER_ROWS
            .iter()
            .map(|r| (r.sm_luts.min(r.abc_luts) as f64) / r.proposed_luts as f64)
            .collect();
        let geo = pfdbg_util::stats::geomean(&ratios).unwrap();
        assert!(geo > 2.8 && geo < 4.5, "transcription off? geomean {geo}");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("nonesuch").is_none());
        assert!(paper_row("nonesuch").is_none());
    }
}
