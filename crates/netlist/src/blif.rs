//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! The subset implemented is what the VTR / ISCAS89 benchmark files use:
//! `.model`, `.inputs`, `.outputs`, `.names` with a sum-of-products cover
//! (including `-` don't-cares), `.latch` (with optional type/control and
//! init value) and `.end`. Line continuation with `\` is supported.
//!
//! `.names` with a cover whose output column is `0` (an OFF-set cover) is
//! also handled, as are constant nodes (a `.names` with no inputs).

use crate::network::{Network, NodeId, NodeKind};
use crate::truth::TruthTable;
use pfdbg_util::FxHashMap;
use std::fmt::Write as _;

/// A BLIF parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for BlifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BLIF error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BlifError {}

fn err(line: usize, message: impl Into<String>) -> BlifError {
    BlifError { line, message: message.into() }
}

/// One `.names` cover row: input pattern (`0`/`1`/`-` per input) and the
/// output value.
struct CoverRow {
    pattern: Vec<Option<bool>>,
    output: bool,
}

struct PendingNames {
    line: usize,
    signals: Vec<String>,
    rows: Vec<CoverRow>,
}

struct PendingLatch {
    line: usize,
    input: String,
    output: String,
    init: bool,
}

/// Parse a BLIF document into a [`Network`].
///
/// Only the first `.model` in the file is read (hierarchical BLIF with
/// `.subckt` is not part of the benchmark subset and is rejected).
pub fn parse(text: &str) -> Result<Network, BlifError> {
    // Join continuation lines, remembering the original line number of the
    // start of each logical line.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut piece = no_comment.trim_end().to_string();
        let continued = piece.ends_with('\\');
        if continued {
            piece.pop();
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(piece.trim_start());
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((lineno, piece));
                } else if !piece.trim().is_empty() {
                    logical.push((lineno, piece));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut model_name = String::new();
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut names: Vec<PendingNames> = Vec::new();
    let mut latches: Vec<PendingLatch> = Vec::new();
    let mut seen_end = false;

    let mut iter = logical.iter().peekable();
    while let Some(&(lineno, ref line)) = iter.next() {
        let mut tokens = line.split_whitespace();
        let head = match tokens.next() {
            Some(h) => h,
            None => continue,
        };
        if seen_end {
            return Err(err(lineno, "content after .end"));
        }
        match head {
            ".model" => {
                if !model_name.is_empty() {
                    return Err(err(lineno, "multiple .model sections (hierarchy unsupported)"));
                }
                model_name = tokens.next().unwrap_or("top").to_string();
            }
            ".inputs" => {
                for t in tokens {
                    inputs.push((lineno, t.to_string()));
                }
            }
            ".outputs" => {
                for t in tokens {
                    outputs.push(t.to_string());
                }
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(err(lineno, ".names with no signals"));
                }
                let n_in = signals.len() - 1;
                let mut rows = Vec::new();
                // Consume cover rows: lines not starting with '.'.
                while let Some(&&(row_line, ref row)) = iter.peek() {
                    if row.trim_start().starts_with('.') {
                        break;
                    }
                    iter.next();
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pat_str, out_str) = match (n_in, parts.len()) {
                        (0, 1) => ("", parts[0]),
                        (_, 2) => (parts[0], parts[1]),
                        _ => {
                            return Err(err(
                                row_line,
                                format!("malformed cover row {row:?} for {n_in} inputs"),
                            ))
                        }
                    };
                    if pat_str.len() != n_in {
                        return Err(err(
                            row_line,
                            format!("pattern {pat_str:?} length != {n_in} inputs"),
                        ));
                    }
                    let mut pattern = Vec::with_capacity(n_in);
                    for c in pat_str.chars() {
                        pattern.push(match c {
                            '0' => Some(false),
                            '1' => Some(true),
                            '-' => None,
                            _ => return Err(err(row_line, format!("bad pattern char {c:?}"))),
                        });
                    }
                    let output = match out_str {
                        "0" => false,
                        "1" => true,
                        _ => return Err(err(row_line, format!("bad output value {out_str:?}"))),
                    };
                    rows.push(CoverRow { pattern, output });
                }
                names.push(PendingNames { line: lineno, signals, rows });
            }
            ".latch" => {
                let parts: Vec<&str> = tokens.collect();
                // .latch input output [type control] [init]
                let (input, output, init) = match parts.len() {
                    2 => (parts[0], parts[1], false),
                    3 => (parts[0], parts[1], parse_init(parts[2], lineno)?),
                    4 => (parts[0], parts[1], false),
                    5 => (parts[0], parts[1], parse_init(parts[4], lineno)?),
                    _ => return Err(err(lineno, "malformed .latch")),
                };
                latches.push(PendingLatch {
                    line: lineno,
                    input: input.to_string(),
                    output: output.to_string(),
                    init,
                });
            }
            ".end" => {
                seen_end = true;
            }
            ".subckt" | ".gate" | ".mlatch" => {
                return Err(err(lineno, format!("unsupported construct {head}")));
            }
            other if other.starts_with('.') => {
                // Tolerate harmless extensions (.default_input_arrival etc.)
                continue;
            }
            _ => {
                return Err(err(lineno, format!("unexpected line {line:?}")));
            }
        }
    }

    // Build the network: inputs, then latch outputs (so feedback works),
    // then names nodes in dependency order (they may be listed in any
    // order in the file, so we do it in two passes via placeholder wiring).
    let mut nw = Network::new(if model_name.is_empty() { "top".to_string() } else { model_name });
    let mut id_of: FxHashMap<String, NodeId> = FxHashMap::default();

    for (lineno, name) in &inputs {
        if id_of.contains_key(name) {
            return Err(err(*lineno, format!("duplicate input {name}")));
        }
        id_of.insert(name.clone(), nw.add_input(name.clone()));
    }

    // Latch outputs are sources; create them fed by a placeholder (their
    // own output — rewired below once the data net exists).
    for latch in &latches {
        if id_of.contains_key(&latch.output) {
            return Err(err(latch.line, format!("duplicate driver for {}", latch.output)));
        }
        // Temporary self-ish placeholder: feed from input 0 or a constant.
        let placeholder = nw.add_const(nw.fresh_name("__latch_ph"), false);
        let q = nw.add_latch(latch.output.clone(), placeholder, latch.init);
        id_of.insert(latch.output.clone(), q);
    }

    // .names nodes: topological-insertion loop. Repeatedly add nodes whose
    // fanins are all known. Undriven fanin nets become implicit inputs
    // (common in trimmed benchmark files).
    let mut remaining: Vec<&PendingNames> = names.iter().collect();
    // First, any signal used as fanin but never defined becomes an input.
    {
        let mut defined: FxHashMap<&str, ()> = FxHashMap::default();
        for pn in &names {
            let (out, _) = pn.signals.split_last().expect("nonempty");
            defined.insert(out.as_str(), ());
        }
        for pn in &names {
            let n = pn.signals.len() - 1;
            for s in &pn.signals[..n] {
                if !defined.contains_key(s.as_str()) && !id_of.contains_key(s) {
                    id_of.insert(s.clone(), nw.add_input(s.clone()));
                }
            }
        }
        for latch in &latches {
            if !defined.contains_key(latch.input.as_str()) && !id_of.contains_key(&latch.input) {
                id_of.insert(latch.input.clone(), nw.add_input(latch.input.clone()));
            }
        }
    }

    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|pn| {
            let (out, ins) = pn.signals.split_last().expect("nonempty");
            let fanins: Option<Vec<NodeId>> = ins.iter().map(|s| id_of.get(s).copied()).collect();
            match fanins {
                Some(fanins) => {
                    let table = cover_to_table(&pn.rows, ins.len());
                    let id = nw.add_table(out.clone(), fanins, table);
                    id_of.insert(out.clone(), id);
                    false
                }
                None => true,
            }
        });
        if remaining.len() == before {
            let pn = remaining[0];
            return Err(err(
                pn.line,
                format!(
                    "combinational cycle or undefined fanin for .names {}",
                    pn.signals.last().expect("nonempty")
                ),
            ));
        }
    }

    // Rewire latches to their real data nets.
    for latch in &latches {
        let q = id_of[&latch.output];
        let data = *id_of
            .get(&latch.input)
            .ok_or_else(|| err(latch.line, format!("latch input {} undefined", latch.input)))?;
        nw.set_latch_data(q, data);
    }

    for out in &outputs {
        let driver = *id_of.get(out).ok_or_else(|| err(0, format!("output {out} never driven")))?;
        nw.add_output(out.clone(), driver);
    }

    // Remove orphaned latch placeholders.
    nw.sweep_dead();
    Ok(nw)
}

fn parse_init(tok: &str, lineno: usize) -> Result<bool, BlifError> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        // 2 = don't care, 3 = unknown: model as 0.
        "2" | "3" => Ok(false),
        _ => Err(err(lineno, format!("bad latch init {tok:?}"))),
    }
}

/// Convert a SOP cover to a truth table. Rows with output `1` are the
/// ON-set (anything else 0); if all rows have output `0` the cover is the
/// OFF-set (anything else 1). An empty cover is constant 0 per SIS
/// convention.
fn cover_to_table(rows: &[CoverRow], n_in: usize) -> TruthTable {
    if rows.is_empty() {
        return TruthTable::const0(n_in);
    }
    let on_set = rows.iter().any(|r| r.output);
    let mut t = if on_set { TruthTable::const0(n_in) } else { TruthTable::const1(n_in) };
    let cube = |row: &CoverRow| -> TruthTable {
        let mut c = TruthTable::const1(n_in);
        for (i, lit) in row.pattern.iter().enumerate() {
            match lit {
                Some(true) => c = c.and(&TruthTable::var(n_in, i)),
                Some(false) => c = c.and(&TruthTable::var(n_in, i).not()),
                None => {}
            }
        }
        c
    };
    for row in rows {
        if row.output == on_set {
            let c = cube(row);
            if on_set {
                t = t.or(&c);
            } else {
                t = t.and(&c.not());
            }
        }
    }
    t
}

/// Serialize a [`Network`] to BLIF. Truth tables are emitted as ON-set
/// minterm covers (correct, if not minimal — the files round-trip).
pub fn write(nw: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", nw.name);
    let input_names: Vec<&str> = nw.inputs().map(|id| nw.node(id).name.as_str()).collect();
    if !input_names.is_empty() {
        let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    }
    if !nw.outputs().is_empty() {
        let names: Vec<&str> = nw.outputs().iter().map(|o| o.name.as_str()).collect();
        let _ = writeln!(out, ".outputs {}", names.join(" "));
    }
    for (_, node) in nw.nodes() {
        match &node.kind {
            NodeKind::Latch { init } => {
                let data = nw.node(node.fanins[0]).name.as_str();
                let _ = writeln!(out, ".latch {} {} {}", data, node.name, u8::from(*init));
            }
            NodeKind::Const(v) => {
                let _ = writeln!(out, ".names {}", node.name);
                if *v {
                    let _ = writeln!(out, "1");
                }
            }
            NodeKind::Table(t) => {
                let ins: Vec<&str> =
                    node.fanins.iter().map(|&f| nw.node(f).name.as_str()).collect();
                let _ = writeln!(out, ".names {} {}", ins.join(" "), node.name);
                // Emit ON-set minterms (or OFF-set if that's smaller).
                let ones = t.count_ones();
                let rows = t.n_rows();
                if ones == rows {
                    // constant 1 with inputs — emit all-dontcare row
                    let _ = writeln!(out, "{} 1", "-".repeat(t.nvars()));
                } else if ones * 2 <= rows {
                    for row in 0..rows {
                        if t.bit(row) {
                            let _ = writeln!(out, "{} 1", row_pattern(row, t.nvars()));
                        }
                    }
                } else {
                    for row in 0..rows {
                        if !t.bit(row) {
                            let _ = writeln!(out, "{} 0", row_pattern(row, t.nvars()));
                        }
                    }
                }
            }
            NodeKind::Input => {}
        }
    }
    // Any primary output whose port name differs from its driver net gets a
    // buffer so the name exists in the file.
    for port in nw.outputs() {
        let driver_name = &nw.node(port.driver).name;
        if driver_name != &port.name {
            let _ = writeln!(out, ".names {} {}", driver_name, port.name);
            let _ = writeln!(out, "1 1");
        }
    }
    out.push_str(".end\n");
    out
}

fn row_pattern(row: usize, nvars: usize) -> String {
    // Variable 0 is written leftmost in BLIF input lists, and our tables
    // use LSB = variable 0, so emit bit i at position i.
    (0..nvars).map(|i| if (row >> i) & 1 == 1 { '1' } else { '0' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    const SMALL: &str = "\
# a tiny mixed design
.model small
.inputs a b c
.outputs y q
.names a b t1
11 1
.names t1 c y
10 1
01 1
.latch y q 0
.end
";

    #[test]
    fn parse_small() {
        let nw = parse(SMALL).unwrap();
        assert_eq!(nw.name, "small");
        assert_eq!(nw.n_inputs(), 3);
        assert_eq!(nw.n_tables(), 2);
        assert_eq!(nw.n_latches(), 1);
        assert_eq!(nw.n_outputs(), 2);
        nw.validate().unwrap();
        // t1 = a AND b; y = t1 XOR c
        let y = nw.find("y").unwrap();
        let t = nw.node(y).table().unwrap();
        assert_eq!(t, &crate::truth::gates::xor2());
    }

    #[test]
    fn out_of_order_names_resolved() {
        let text = "\
.model ooo
.inputs a b
.outputs y
.names t y
1 1
.names a b t
11 1
.end
";
        let nw = parse(text).unwrap();
        nw.validate().unwrap();
        assert_eq!(nw.n_tables(), 2);
    }

    #[test]
    fn offset_cover() {
        let text = "\
.model off
.inputs a b
.outputs y
.names a b y
00 0
.end
";
        let nw = parse(text).unwrap();
        let y = nw.find("y").unwrap();
        // y = NOT(a=0 AND b=0) = a OR b
        assert_eq!(nw.node(y).table().unwrap(), &crate::truth::gates::or2());
    }

    #[test]
    fn dont_cares_in_cover() {
        let text = "\
.model dc
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
";
        let nw = parse(text).unwrap();
        let y = nw.find("y").unwrap();
        let t = nw.node(y).table().unwrap();
        for row in 0..8usize {
            let a = row & 1 == 1;
            let b = row & 2 == 2;
            let c = row & 4 == 4;
            assert_eq!(t.bit(row), a || (b && c), "row {row}");
        }
    }

    #[test]
    fn constant_nodes() {
        let text = "\
.model consts
.outputs one zero
.names one
1
.names zero
.end
";
        let nw = parse(text).unwrap();
        let one = nw.find("one").unwrap();
        let zero = nw.find("zero").unwrap();
        assert!(nw.node(one).table().unwrap().is_const1());
        assert!(nw.node(zero).table().unwrap().is_const0());
    }

    #[test]
    fn latch_feedback_loop() {
        let text = "\
.model counter
.inputs en
.outputs q
.latch d q 0
.names q en d
01 1
10 1
.end
";
        let nw = parse(text).unwrap();
        nw.validate().unwrap();
        assert_eq!(nw.n_latches(), 1);
    }

    #[test]
    fn latch_with_control_and_init() {
        let text = "\
.model lc
.inputs d clk
.outputs q
.latch d q re clk 1
.end
";
        let nw = parse(text).unwrap();
        let q = nw.find("q").unwrap();
        assert!(matches!(nw.node(q).kind, NodeKind::Latch { init: true }));
    }

    #[test]
    fn continuation_lines() {
        let text = ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nw = parse(text).unwrap();
        assert_eq!(nw.n_inputs(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".model e\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("pattern"));
    }

    #[test]
    fn cycle_reported() {
        let text = "\
.model cyc
.inputs a
.outputs y
.names a x y
11 1
.names a y x
11 1
.end
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn round_trip_preserves_function() {
        let nw = parse(SMALL).unwrap();
        let text = write(&nw);
        let nw2 = parse(&text).unwrap();
        nw2.validate().unwrap();
        assert!(sim::comb_equivalent(&nw, &nw2, 64, 0xBEEF).unwrap());
    }

    #[test]
    fn writer_emits_offset_for_dense_tables() {
        let mut nw = Network::new("dense");
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let y = nw.add_table("y", vec![a, b], crate::truth::gates::or2());
        nw.add_output("y", y);
        let text = write(&nw);
        // OR2 has 3 ones of 4 rows -> OFF-set (1 row) is emitted.
        assert!(text.contains("00 0"), "{text}");
        let nw2 = parse(&text).unwrap();
        assert!(sim::comb_equivalent(&nw, &nw2, 16, 7).unwrap());
    }
}
