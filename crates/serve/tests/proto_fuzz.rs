//! Protocol fuzzing: arbitrary and malformed request lines against a
//! live server. The contract under test is total: *every* line gets
//! exactly one error reply, and the worker that served it survives to
//! answer a well-formed ping on the same connection.

use pfdbg_core::{prepare_instrumented, InstrumentConfig, OfflineConfig};
use pfdbg_serve::server::{Server, ServerConfig};
use pfdbg_serve::session::{Engine, SessionManager};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};

fn build_engine() -> Engine {
    let design = pfdbg_circuits::generate(&pfdbg_circuits::GenParams {
        n_inputs: 8,
        n_outputs: 6,
        n_gates: 40,
        depth: 5,
        n_latches: 2,
        seed: 33,
    });
    let (_, _, inst) = prepare_instrumented(
        &design,
        &InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 },
        6,
    )
    .unwrap();
    let off = pfdbg_core::offline(&inst, &OfflineConfig::default()).unwrap();
    Engine::new(inst, off.scg.unwrap(), off.layout.unwrap(), off.icap)
}

/// One shared server for every fuzz case (the engine build dominates
/// startup cost). Remote shutdown is off so no fuzz line — however
/// unlikely — can stop it; the handle is leaked and dies with the
/// test process.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let manager = SessionManager::new(Arc::new(build_engine()), 16);
        let handle = Server::start(
            manager,
            ServerConfig { workers: 2, allow_remote_shutdown: false, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = handle.local_addr();
        std::mem::forget(handle);
        addr
    })
}

/// Deterministic junk from a seed: printable, newline-free, non-empty.
fn junk(seed: &mut u64, min_len: usize, max_len: usize) -> String {
    const CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789{}[]\":,.-+eE_ \\/!@#$%^&*()";
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let len = min_len + (next() as usize) % (max_len - min_len).max(1);
    let mut s: String =
        (0..len.max(1)).map(|_| CHARSET[next() as usize % CHARSET.len()] as char).collect();
    if s.trim().is_empty() {
        s.push('~'); // empty lines are silently skipped by the server
    }
    s
}

/// One malformed request line per mutation family.
fn malformed_line(mut seed: u64, kind: usize) -> String {
    match kind {
        // Raw junk: almost never valid JSON at all.
        0 => junk(&mut seed, 1, 80),
        // Valid JSON, nonsense op.
        1 => format!("{{\"op\":\"zz{}\"}}", junk(&mut seed, 1, 12).replace(['"', '\\'], "x")),
        // A plausible select request, truncated mid-structure.
        2 => {
            let full =
                "{\"op\":\"select\",\"session\":\"s\",\"params\":\"0101\",\"deadline_ms\":5}";
            let cut = 1 + (seed as usize) % (full.len() - 1);
            full[..cut].to_string()
        }
        // Right op, wrong field types.
        3 => "{\"op\":\"select\",\"session\":42,\"params\":true,\"deadline_ms\":\"soon\"}".into(),
        // Structurally fine, hostile numbers.
        _ => format!(
            "{{\"op\":\"select\",\"session\":\"s\",\"params\":\"01\",\"deadline_ms\":{}}}",
            ["-1", "1e300", "-0.0000001", "999999999999999999999999"][(seed as usize) % 4]
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_malformed_line_gets_an_error_reply_and_the_worker_lives(
        seed in any::<u64>(),
        kind in 0usize..5,
    ) {
        let line = malformed_line(seed, kind);
        prop_assert!(!line.contains('\n') && !line.trim().is_empty());

        let stream = TcpStream::connect(server_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        prop_assert!(!reply.is_empty(), "no reply for {line:?} — worker died?");
        let events = pfdbg_obs::jsonl::parse_jsonl(&reply).unwrap();
        prop_assert_eq!(events.len(), 1, "exactly one reply per line");
        prop_assert_eq!(
            events[0].fields.get("ok"),
            Some(&pfdbg_obs::jsonl::JsonValue::Bool(false)),
            "malformed line was accepted: {:?} -> {:?}", line, reply
        );

        // Same connection, same worker: a well-formed request still works.
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        let events = pfdbg_obs::jsonl::parse_jsonl(&pong).unwrap();
        prop_assert_eq!(
            events.first().and_then(|ev| ev.fields.get("ok")),
            Some(&pfdbg_obs::jsonl::JsonValue::Bool(true)),
            "worker did not survive {:?}", line
        );
    }
}
