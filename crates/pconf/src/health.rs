//! Device-level health supervision: the rung ladder a fleet supervisor
//! climbs as commit escalations, rollbacks, scrub quarantines, and
//! watchdog trips accumulate, plus the deadline watchdog itself.
//!
//! The commit ladder in [`crate::icap`] and the scrubber in
//! [`crate::scrub`] absorb *transient* faults and report what they
//! spent doing so. This module turns those reports into a judgement
//! about the device: a port that needs escalations every turn, rolls
//! commits back repeatedly, quarantines frames, or blows through its
//! deadline is degrading toward useless, and a serve fleet should stop
//! routing sessions at it before it takes them down.
//!
//! The watchdog's deadline *scales with the retry ladder*: a commit
//! that spent its time on honest retries and escalations earns a
//! proportionally larger allowance, so a slow-but-progressing commit
//! under a 10% fault rate never false-trips, while a wedged port —
//! burning real wall-clock time without progress — always does.

use crate::icap::CommitStats;
use crate::scrub::ScrubReport;
use std::time::Duration;

/// Health rung of one device, worst last. The ladder only climbs on
/// bad events; it steps down a single rung (Degraded → Healthy) after
/// a run of clean operations. Quarantined and Failed are terminal from
/// the supervisor's point of view — a fleet drains such a device
/// rather than waiting for it to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceHealth {
    /// Serving cleanly.
    Healthy,
    /// Needing escalations or occasional rollbacks, but progressing.
    Degraded,
    /// Repeated rollbacks, scrub quarantines, or a watchdog trip:
    /// stop routing new work here and drain.
    Quarantined,
    /// Definitively dead (repeated watchdog trips or rollback storms,
    /// or an explicit kill).
    Failed,
}

impl DeviceHealth {
    /// Stable wire name (metrics gauges, `devices` verb, `pfdbg top`).
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Degraded => "degraded",
            DeviceHealth::Quarantined => "quarantined",
            DeviceHealth::Failed => "failed",
        }
    }

    /// Numeric gauge encoding (0 = healthy … 3 = failed).
    pub fn score(self) -> u64 {
        match self {
            DeviceHealth::Healthy => 0,
            DeviceHealth::Degraded => 1,
            DeviceHealth::Quarantined => 2,
            DeviceHealth::Failed => 3,
        }
    }

    /// `true` once a fleet should drain the device (Quarantined or
    /// Failed).
    pub fn needs_drain(self) -> bool {
        self >= DeviceHealth::Quarantined
    }
}

/// One observed event on a device, fed to [`HealthLadder::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// A commit landed without entering the escalation ladder.
    CleanCommit,
    /// A commit landed but entered `levels` escalation levels.
    Escalation(u32),
    /// A commit failed and the turn rolled back.
    Rollback,
    /// A commit or scrub pass blew through its watchdog deadline.
    WatchdogTrip,
    /// A scrub pass found nothing to repair (or repaired everything).
    ScrubClean,
    /// A scrub pass quarantined `frames` stuck frames.
    ScrubQuarantine(usize),
}

/// Thresholds of one [`HealthLadder`]. All counters are cumulative
/// since the last downward step, except `recover_after_clean` which
/// counts *consecutive* clean operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Escalation levels (summed) before Healthy drops to Degraded.
    pub degrade_after_escalations: u32,
    /// Rollbacks before the device is Quarantined.
    pub quarantine_after_rollbacks: u32,
    /// Rollbacks before the device is Failed outright.
    pub fail_after_rollbacks: u32,
    /// Watchdog trips before the device is Failed (the first trip
    /// already Quarantines it).
    pub fail_after_trips: u32,
    /// Consecutive clean commits/scrubs before Degraded steps back
    /// down to Healthy.
    pub recover_after_clean: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after_escalations: 4,
            quarantine_after_rollbacks: 3,
            fail_after_rollbacks: 6,
            fail_after_trips: 2,
            recover_after_clean: 16,
        }
    }
}

/// A rung transition reported by [`HealthLadder::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Rung before the event.
    pub from: DeviceHealth,
    /// Rung after the event.
    pub to: DeviceHealth,
}

/// Per-device health state machine. Not thread-safe by itself — the
/// serve fleet guards each ladder with its device slot's lock.
#[derive(Debug, Clone)]
pub struct HealthLadder {
    policy: HealthPolicy,
    health: DeviceHealth,
    escalations: u32,
    rollbacks: u32,
    trips: u32,
    consecutive_clean: u32,
}

impl Default for HealthLadder {
    fn default() -> Self {
        Self::new(HealthPolicy::default())
    }
}

impl HealthLadder {
    /// A Healthy ladder under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthLadder {
            policy,
            health: DeviceHealth::Healthy,
            escalations: 0,
            rollbacks: 0,
            trips: 0,
            consecutive_clean: 0,
        }
    }

    /// Current rung.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// Lifetime watchdog trips observed.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Lifetime rollbacks observed.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// Force the ladder onto a rung (explicit `fail`/`drain` verbs and
    /// device-mode kills bypass the thresholds). Returns the
    /// transition if the rung changed. Failed is terminal: the ladder
    /// never leaves it, even by force.
    pub fn force(&mut self, to: DeviceHealth) -> Option<HealthTransition> {
        if self.health == DeviceHealth::Failed || to == self.health {
            return None;
        }
        let from = self.health;
        self.health = to;
        Some(HealthTransition { from, to })
    }

    /// Feed one event; returns the transition if the rung changed.
    pub fn observe(&mut self, event: HealthEvent) -> Option<HealthTransition> {
        if self.health == DeviceHealth::Failed {
            return None;
        }
        let target = match event {
            HealthEvent::CleanCommit | HealthEvent::ScrubClean => {
                self.consecutive_clean += 1;
                if self.health == DeviceHealth::Degraded
                    && self.consecutive_clean >= self.policy.recover_after_clean
                {
                    // One rung down, counters reset: recovery must be
                    // re-earned from scratch after the next incident.
                    self.escalations = 0;
                    self.rollbacks = 0;
                    self.consecutive_clean = 0;
                    return self.force(DeviceHealth::Healthy);
                }
                return None;
            }
            HealthEvent::Escalation(levels) => {
                if levels == 0 {
                    return self.observe(HealthEvent::CleanCommit);
                }
                self.consecutive_clean = 0;
                self.escalations += levels;
                if self.escalations >= self.policy.degrade_after_escalations {
                    DeviceHealth::Degraded
                } else {
                    return None;
                }
            }
            HealthEvent::Rollback => {
                self.consecutive_clean = 0;
                self.rollbacks += 1;
                if self.rollbacks >= self.policy.fail_after_rollbacks {
                    DeviceHealth::Failed
                } else if self.rollbacks >= self.policy.quarantine_after_rollbacks {
                    DeviceHealth::Quarantined
                } else {
                    DeviceHealth::Degraded
                }
            }
            HealthEvent::WatchdogTrip => {
                self.consecutive_clean = 0;
                self.trips += 1;
                if self.trips >= self.policy.fail_after_trips {
                    DeviceHealth::Failed
                } else {
                    DeviceHealth::Quarantined
                }
            }
            HealthEvent::ScrubQuarantine(frames) => {
                if frames == 0 {
                    return self.observe(HealthEvent::ScrubClean);
                }
                self.consecutive_clean = 0;
                DeviceHealth::Quarantined
            }
        };
        if target > self.health {
            self.force(target)
        } else {
            None
        }
    }
}

/// Deadline budgets of the commit/scrub watchdog. The allowance for a
/// pass is its base budget plus a per-unit grant for every retry,
/// escalation, or repair the pass *reported doing* — work is evidence
/// of progress, so the deadline stretches with it, and only wall-clock
/// time spent without reported work trips the dog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Base wall-clock budget of one commit.
    pub commit_budget: Duration,
    /// Extra allowance per retry the commit reported.
    pub per_retry: Duration,
    /// Extra allowance per escalation level the commit entered.
    pub per_degradation: Duration,
    /// Base wall-clock budget of one scrub pass.
    pub scrub_budget: Duration,
    /// Extra allowance per upset frame the pass handled.
    pub per_repair: Duration,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            commit_budget: Duration::from_millis(250),
            per_retry: Duration::from_micros(250),
            per_degradation: Duration::from_millis(20),
            scrub_budget: Duration::from_millis(500),
            per_repair: Duration::from_millis(1),
        }
    }
}

/// Outcome of one watchdog assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogVerdict {
    /// `true` when the pass exceeded its scaled allowance.
    pub tripped: bool,
    /// Wall-clock time the pass actually took.
    pub elapsed: Duration,
    /// The allowance it was granted (budget + scaled ladder grants).
    pub allowed: Duration,
}

impl WatchdogPolicy {
    /// Allowance earned by a commit: base budget plus per-retry and
    /// per-escalation grants. Works for failed commits too —
    /// `commit_frames` reports stats in its `Err` as well.
    pub fn commit_allowance(&self, stats: &CommitStats) -> Duration {
        self.commit_budget
            + self.per_retry * stats.retries
            + self.per_degradation * stats.degradations
    }

    /// Judge one commit against its scaled deadline. `elapsed` is the
    /// *wall-clock* time measured around the commit — the modeled
    /// transfer/verify times in `stats` are device-time and play no
    /// role here.
    pub fn assess_commit(&self, stats: &CommitStats, elapsed: Duration) -> WatchdogVerdict {
        let allowed = self.commit_allowance(stats);
        WatchdogVerdict { tripped: elapsed > allowed, elapsed, allowed }
    }

    /// Allowance earned by a scrub pass: base budget plus a grant per
    /// upset frame it detected (repaired, still-failing, or newly
    /// quarantined — all three are reported work).
    pub fn scrub_allowance(&self, report: &ScrubReport) -> Duration {
        self.scrub_budget + self.per_repair * report.upset_frames as u32
    }

    /// Judge one scrub pass against its scaled deadline.
    pub fn assess_scrub(&self, report: &ScrubReport, elapsed: Duration) -> WatchdogVerdict {
        let allowed = self.scrub_allowance(report);
        WatchdogVerdict { tripped: elapsed > allowed, elapsed, allowed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icap::{commit_frames, CommitPolicy, IcapChannel, IcapError, MemoryIcap};
    use pfdbg_arch::{Bitstream, IcapModel};
    use pfdbg_util::BitVec;
    use std::time::Instant;

    fn stream(n_bits: usize, ones: &[usize]) -> Bitstream {
        let mut b = Bitstream::from_bits(BitVec::zeros(n_bits));
        for &i in ones {
            b.set(i, true);
        }
        b
    }

    #[test]
    fn ladder_degrades_on_accumulated_escalations() {
        let mut l = HealthLadder::default();
        assert_eq!(l.observe(HealthEvent::Escalation(2)), None);
        let t = l.observe(HealthEvent::Escalation(2)).expect("4 levels hit the threshold");
        assert_eq!((t.from, t.to), (DeviceHealth::Healthy, DeviceHealth::Degraded));
        assert_eq!(l.health(), DeviceHealth::Degraded);
    }

    #[test]
    fn ladder_quarantines_then_fails_on_rollback_storm() {
        let mut l = HealthLadder::default();
        l.observe(HealthEvent::Rollback);
        assert_eq!(l.health(), DeviceHealth::Degraded, "first rollback only degrades");
        l.observe(HealthEvent::Rollback);
        let t = l.observe(HealthEvent::Rollback).unwrap();
        assert_eq!(t.to, DeviceHealth::Quarantined);
        l.observe(HealthEvent::Rollback);
        l.observe(HealthEvent::Rollback);
        let t = l.observe(HealthEvent::Rollback).unwrap();
        assert_eq!(t.to, DeviceHealth::Failed);
        assert_eq!(l.observe(HealthEvent::CleanCommit), None, "Failed is terminal");
        assert_eq!(l.force(DeviceHealth::Healthy), None, "even by force");
    }

    #[test]
    fn first_watchdog_trip_quarantines_second_fails() {
        let mut l = HealthLadder::default();
        assert_eq!(l.observe(HealthEvent::WatchdogTrip).unwrap().to, DeviceHealth::Quarantined);
        assert_eq!(l.observe(HealthEvent::WatchdogTrip).unwrap().to, DeviceHealth::Failed);
    }

    #[test]
    fn scrub_quarantine_quarantines_and_clean_scrubs_recover_degraded() {
        let mut l =
            HealthLadder::new(HealthPolicy { recover_after_clean: 3, ..HealthPolicy::default() });
        assert_eq!(l.observe(HealthEvent::ScrubQuarantine(0)), None, "zero frames is clean");
        assert_eq!(
            l.observe(HealthEvent::ScrubQuarantine(2)).unwrap().to,
            DeviceHealth::Quarantined
        );

        let mut d = HealthLadder::new(HealthPolicy {
            degrade_after_escalations: 1,
            recover_after_clean: 3,
            ..HealthPolicy::default()
        });
        d.observe(HealthEvent::Escalation(1));
        assert_eq!(d.health(), DeviceHealth::Degraded);
        d.observe(HealthEvent::CleanCommit);
        d.observe(HealthEvent::ScrubClean);
        let t = d.observe(HealthEvent::CleanCommit).expect("3 consecutive cleans recover");
        assert_eq!((t.from, t.to), (DeviceHealth::Degraded, DeviceHealth::Healthy));
        // An escalation in the middle resets the clean streak.
        d.observe(HealthEvent::Escalation(1));
        d.observe(HealthEvent::CleanCommit);
        d.observe(HealthEvent::CleanCommit);
        d.observe(HealthEvent::Escalation(1));
        d.observe(HealthEvent::CleanCommit);
        d.observe(HealthEvent::CleanCommit);
        assert_eq!(d.health(), DeviceHealth::Degraded, "streak restarted after the escalation");
    }

    #[test]
    fn quarantined_does_not_recover() {
        let mut l =
            HealthLadder::new(HealthPolicy { recover_after_clean: 1, ..HealthPolicy::default() });
        l.observe(HealthEvent::WatchdogTrip);
        assert_eq!(l.health(), DeviceHealth::Quarantined);
        l.observe(HealthEvent::CleanCommit);
        assert_eq!(l.health(), DeviceHealth::Quarantined, "drain rungs never step down");
    }

    /// A port that fails ~10% of writes from a seeded generator —
    /// honest transient faults the retry ladder absorbs with modeled
    /// (not slept) backoff, so wall-clock elapsed stays tiny.
    struct Flaky10 {
        inner: MemoryIcap,
        state: u64,
    }

    impl Flaky10 {
        fn chance(&mut self) -> bool {
            // SplitMix64, same idiom as `icap::Backoff`: no rand dep.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)).is_multiple_of(10)
        }
    }

    impl IcapChannel for Flaky10 {
        fn frame_bits(&self) -> usize {
            self.inner.frame_bits()
        }
        fn n_bits(&self) -> usize {
            self.inner.n_bits()
        }
        fn write_frame(&mut self, frame: usize, data: &[u64]) -> Result<(), IcapError> {
            if self.chance() {
                return Err(IcapError::WriteFailed);
            }
            self.inner.write_frame(frame, data)
        }
        fn read_frame(&self, frame: usize) -> Vec<u64> {
            self.inner.read_frame(frame)
        }
    }

    /// A permanently wedged port: every write burns real wall-clock
    /// time, then stalls. The watchdog exists for exactly this.
    struct Wedged {
        inner: MemoryIcap,
        sleep: Duration,
    }

    impl IcapChannel for Wedged {
        fn frame_bits(&self) -> usize {
            self.inner.frame_bits()
        }
        fn n_bits(&self) -> usize {
            self.inner.n_bits()
        }
        fn write_frame(&mut self, _frame: usize, _data: &[u64]) -> Result<(), IcapError> {
            std::thread::sleep(self.sleep);
            Err(IcapError::Stalled)
        }
        fn read_frame(&self, frame: usize) -> Vec<u64> {
            self.inner.read_frame(frame)
        }
    }

    /// Satellite guard: a slow-but-progressing commit at a 10% fault
    /// rate must NOT trip the watchdog — its retries stretch the
    /// deadline — while a wedged commit must.
    #[test]
    fn watchdog_spares_progressing_commits_and_trips_wedged_ones() {
        let icap = IcapModel::virtex5();
        let n_bits = 64 * 128;
        let frames: Vec<usize> = (0..64).collect();
        let target = stream(n_bits, &[5, 300, 7000]);
        let policy = WatchdogPolicy {
            commit_budget: Duration::from_millis(50),
            per_retry: Duration::from_micros(100),
            per_degradation: Duration::from_millis(5),
            ..WatchdogPolicy::default()
        };

        // Honest 10% faults: retries and escalations earn allowance,
        // and the modeled backoff costs no wall-clock time.
        let mut flaky = Flaky10 { inner: MemoryIcap::new(stream(n_bits, &[]), 128), state: 0x7EA };
        let t0 = Instant::now();
        let stats =
            commit_frames(&mut flaky, &icap, &target, &frames, &frames, &CommitPolicy::default())
                .expect("10% transient faults commit through the ladder");
        let verdict = policy.assess_commit(&stats, t0.elapsed());
        assert!(stats.retries > 0, "the run must actually have been slow: {stats:?}");
        assert!(
            !verdict.tripped,
            "progressing commit false-tripped: {:?} > {:?} with {} retries",
            verdict.elapsed, verdict.allowed, stats.retries
        );

        // Wedged: 5 ms of real wall time per write against a 100 µs
        // per-retry grant — the deadline cannot stretch fast enough.
        // Small device so the level-2 full-reconfig escalation doesn't
        // sleep the test for seconds.
        let wedged_target = stream(8 * 128, &[5, 300]);
        let mut wedged = Wedged {
            inner: MemoryIcap::new(stream(8 * 128, &[]), 128),
            sleep: Duration::from_millis(5),
        };
        let t0 = Instant::now();
        let (stats, _msg) = commit_frames(
            &mut wedged,
            &icap,
            &wedged_target,
            &[0, 1],
            &[0, 1],
            &CommitPolicy::default(),
        )
        .expect_err("a fully stalled port cannot commit");
        let verdict = policy.assess_commit(&stats, t0.elapsed());
        assert!(
            verdict.tripped,
            "wedged commit must trip: {:?} <= {:?}",
            verdict.elapsed, verdict.allowed
        );
    }

    #[test]
    fn scrub_allowance_scales_with_upsets() {
        let policy = WatchdogPolicy::default();
        let quiet = ScrubReport::default();
        let busy = ScrubReport { upset_frames: 40, ..ScrubReport::default() };
        assert!(policy.scrub_allowance(&busy) > policy.scrub_allowance(&quiet));
        let v = policy.assess_scrub(&quiet, policy.scrub_budget + Duration::from_millis(1));
        assert!(v.tripped);
        let v = policy.assess_scrub(&busy, policy.scrub_budget + Duration::from_millis(1));
        assert!(!v.tripped, "upset handling stretched the deadline");
    }
}
