//! Generalized (parameterized) bitstreams.
//!
//! The offline generic stage emits a bitstream in which most
//! configuration bits are constants, but the bits implementing the
//! debug instrumentation — TCON routing switches and TLUT truth-table
//! bits — are Boolean functions of the PConf parameters. Evaluating all
//! functions for a concrete parameter assignment (the job of the
//! [`crate::scg`] module) yields an ordinary, loadable bitstream.

use crate::bdd::{Bdd, BddManager};
use pfdbg_arch::{BitAddr, Bitstream, BitstreamLayout};

/// A bitstream whose bits may be Boolean functions of parameters.
#[derive(Debug)]
pub struct GeneralizedBitstream {
    /// The constant part (tunable addresses hold their `params = 0`
    /// default here, so `base` alone is already a valid configuration).
    pub base: Bitstream,
    /// The parameterized bits: `(address, function)`, sorted by address.
    pub tunable: Vec<(BitAddr, Bdd)>,
    /// Number of parameter variables.
    pub n_params: usize,
}

impl GeneralizedBitstream {
    /// Number of parameterized configuration bits.
    pub fn n_tunable(&self) -> usize {
        self.tunable.len()
    }

    /// Fraction of the configuration that is parameterized.
    pub fn tunable_fraction(&self) -> f64 {
        self.tunable.len() as f64 / self.base.len() as f64
    }
}

/// Incremental builder used by the offline stage.
pub struct Builder {
    base: Bitstream,
    tunable: Vec<(BitAddr, Bdd)>,
    n_params: usize,
}

impl Builder {
    /// Start from an all-zero bitstream for `layout`.
    pub fn new(layout: &BitstreamLayout, n_params: usize) -> Self {
        Builder { base: layout.empty_bitstream(), tunable: Vec::new(), n_params }
    }

    /// Set a constant configuration bit.
    pub fn set_const(&mut self, addr: BitAddr, value: bool) {
        self.base.set(addr, value);
    }

    /// Declare a parameterized bit. Constant functions degrade to
    /// constant bits (no SCG work at run time).
    pub fn set_func(&mut self, manager: &BddManager, addr: BitAddr, f: Bdd) {
        match f {
            Bdd::FALSE => self.base.set(addr, false),
            Bdd::TRUE => self.base.set(addr, true),
            _ => {
                // Default (all-params-zero) value into the base so the
                // base alone is a consistent configuration.
                let zeros = pfdbg_util::BitVec::zeros(self.n_params);
                self.base.set(addr, manager.eval(f, &zeros));
                self.tunable.push((addr, f));
            }
        }
    }

    /// Finish: sort tunable bits by address, rejecting duplicates.
    pub fn build(mut self) -> Result<GeneralizedBitstream, String> {
        self.tunable.sort_by_key(|&(a, _)| a);
        for w in self.tunable.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!("address {} parameterized twice", w[0].0));
            }
        }
        let g = GeneralizedBitstream {
            base: self.base,
            tunable: self.tunable,
            n_params: self.n_params,
        };
        if pfdbg_obs::enabled() {
            pfdbg_obs::gauge_set("gbs.tunable_bits", g.n_tunable() as f64);
            pfdbg_obs::gauge_set("gbs.total_bits", g.base.len() as f64);
            pfdbg_obs::gauge_set("gbs.params", g.n_params as f64);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_arch::{build_rrg, ArchSpec, Device};
    use pfdbg_util::BitVec;

    fn layout() -> BitstreamLayout {
        let dev = Device::new(ArchSpec { channel_width: 8, ..Default::default() }, 2, 2);
        let rrg = build_rrg(&dev);
        BitstreamLayout::new(&dev, &rrg, 1312)
    }

    #[test]
    fn constants_land_in_base() {
        let l = layout();
        let mut m = BddManager::new();
        let mut b = Builder::new(&l, 4);
        b.set_const(3, true);
        b.set_func(&m, 5, Bdd::TRUE); // constant function folds away
        let p = m.var(0);
        b.set_func(&m, 9, p);
        let g = b.build().unwrap();
        assert!(g.base.get(3));
        assert!(g.base.get(5));
        assert_eq!(g.n_tunable(), 1);
        // Base holds the params=0 default of the tunable bit.
        assert!(!g.base.get(9));
    }

    #[test]
    fn base_reflects_param_zero_default() {
        let l = layout();
        let mut m = BddManager::new();
        let mut b = Builder::new(&l, 2);
        let p0 = m.var(0);
        let np0 = m.not(p0);
        b.set_func(&m, 7, np0); // true when p0 = 0
        let g = b.build().unwrap();
        assert!(g.base.get(7), "default (params=0) evaluates not(p0)=1");
        let _ = BitVec::zeros(2);
    }

    #[test]
    fn duplicate_addresses_rejected() {
        let l = layout();
        let mut m = BddManager::new();
        let mut b = Builder::new(&l, 2);
        let p = m.var(0);
        let q = m.var(1);
        b.set_func(&m, 11, p);
        b.set_func(&m, 11, q);
        assert!(b.build().is_err());
    }

    #[test]
    fn tunable_fraction_is_small() {
        let l = layout();
        let m = BddManager::new();
        let b = Builder::new(&l, 2);
        let g = b.build().unwrap();
        assert_eq!(g.tunable_fraction(), 0.0);
        let _ = m;
    }
}
