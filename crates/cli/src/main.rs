//! `pfdbg` — command-line driver for the parameterized FPGA debugging
//! flow.
//!
//! ```text
//! pfdbg instrument <design.blif> [--ports N] [--coverage C] [--out inst.blif] [--par inst.par]
//! pfdbg compare    <design.blif|@benchmark> [--k K] [--ports N] [--coverage C]
//! pfdbg offline    <design.blif|@benchmark> [--k K] [--ports N]
//! pfdbg observe    <design.blif|@benchmark> --signals s1,s2|auto [--cycles N]
//! pfdbg rank       <design.blif|@benchmark> [--top N]
//! pfdbg report     <trace.jsonl>
//! pfdbg bench-list
//! ```
//!
//! `@name` selects a generated benchmark from the calibrated suite
//! (e.g. `@stereov.`, `@clma`).
//!
//! The global flags `--profile` (print the hierarchical span report on
//! exit) and `--trace-out <file.jsonl>` (export every recorded event)
//! switch the observability layer on; `pfdbg report` digests a trace
//! file back into a summary.

use pfdbg_core::{
    compare_mappers, instrument, offline, prepare_instrumented, rank_signals, DebugSession,
    InstrumentConfig, OfflineConfig, PAPER_K,
};
use pfdbg_netlist::{blif, Network};
use pfdbg_pconf::OnlineReconfigurator;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = take_switch(&mut args, "--profile");
    let trace_out = take_valued(&mut args, "--trace-out");
    if trace_out.is_none() && args.iter().any(|a| a == "--trace-out") {
        pfdbg_obs::diag("--trace-out expects a file path");
        return ExitCode::FAILURE;
    }
    if profile || trace_out.is_some() {
        pfdbg_obs::set_enabled(true);
    }

    let result = run(&args);

    // Result tables own stdout; the profile report is a diagnostic.
    if profile {
        eprint!("{}", pfdbg_obs::registry().render_tree());
    }
    let mut code = match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            pfdbg_obs::diag(&e);
            ExitCode::FAILURE
        }
    };
    if let Some(path) = trace_out {
        match std::fs::write(&path, pfdbg_obs::registry().to_jsonl()) {
            Ok(()) => pfdbg_obs::diag(&format!("wrote trace to {path}")),
            Err(e) => {
                pfdbg_obs::diag(&format!("{path}: {e}"));
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

/// Remove a boolean flag from the argument list, reporting its presence.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Remove a `--flag value` pair from the argument list.
fn take_valued(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "instrument" => cmd_instrument(rest),
        "compare" => cmd_compare(rest),
        "offline" => cmd_offline(rest),
        "observe" => cmd_observe(rest),
        "rank" => cmd_rank(rest),
        "localize" => cmd_localize(rest),
        "report" => cmd_report(rest),
        "bench-list" => {
            for name in pfdbg_circuits::names() {
                let row = pfdbg_circuits::paper_row(name).expect("known");
                println!(
                    "{name:10} {:>6} gates (paper: {:>5} initial LUTs)",
                    row.gates, row.initial_luts
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    }
}

fn print_usage() {
    println!(
        "pfdbg — parameterized FPGA debugging flow\n\
         \n\
         usage:\n\
         \x20 pfdbg instrument <design.blif> [--ports N] [--coverage C] [--out f.blif] [--par f.par]\n\
         \x20 pfdbg compare    <design.blif|@bench> [--k K] [--ports N] [--coverage C]\n\
         \x20 pfdbg offline    <design.blif|@bench> [--k K] [--ports N] [--dump-bitstream f.pfb]\n\
         \x20 pfdbg observe    <design.blif|@bench> --signals s1,s2|auto [--cycles N]\n\
         \x20 pfdbg rank       <design.blif|@bench> [--top N]\n\
         \x20 pfdbg localize   <design.blif|@bench> [--bug <net>] [--cycles N]\n\
         \x20 pfdbg report     <trace.jsonl>\n\
         \x20 pfdbg bench-list\n\
         \n\
         global flags: --profile (span report on exit), --trace-out <f.jsonl>\n\
         `@name` uses a generated benchmark from the calibrated suite."
    );
}

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1).cloned())
}

fn flag_usize(rest: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(rest, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{name} expects a number, got {v:?}")),
    }
}

fn load_design(rest: &[String]) -> Result<(String, Network), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a design file or @benchmark")?;
    if let Some(name) = path.strip_prefix('@') {
        let nw = pfdbg_circuits::build(name)
            .ok_or_else(|| format!("unknown benchmark {name:?} (see bench-list)"))?;
        return Ok((name.to_string(), nw));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let nw = if path.ends_with(".v") || path.ends_with(".sv") {
        pfdbg_netlist::verilog::parse(&text).map_err(|e| e.to_string())?
    } else {
        blif::parse(&text).map_err(|e| e.to_string())?
    };
    Ok((path.clone(), nw))
}

fn icfg(rest: &[String]) -> Result<InstrumentConfig, String> {
    Ok(InstrumentConfig {
        n_ports: flag_usize(rest, "--ports", 4)?,
        coverage: flag_usize(rest, "--coverage", 1)?,
        max_signals: match flag(rest, "--max-signals") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| "--max-signals expects a number".to_string())?),
        },
    })
}

fn cmd_instrument(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let inst = instrument(&nw, &icfg(rest)?);
    let blif_text = blif::write(&inst.network);
    let par_text = inst.annotations.write();
    match flag(rest, "--out") {
        Some(path) => std::fs::write(&path, blif_text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{blif_text}"),
    }
    if let Some(path) = flag(rest, "--par") {
        std::fs::write(&path, par_text).map_err(|e| format!("{path}: {e}"))?;
    }
    pfdbg_obs::diag(&format!(
        "instrumented {name}: {} observable signals, {} ports, {} parameters",
        inst.observable().len(),
        inst.ports.len(),
        inst.n_params()
    ));
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("expected a trace file (produced by --trace-out)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = pfdbg_obs::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", pfdbg_obs::summarize(&events));
    Ok(())
}

fn cmd_compare(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let mut cfg = icfg(rest)?;
    if flag(rest, "--coverage").is_none() {
        cfg.coverage = 2; // paper density by default for comparisons
    }
    let cmp = compare_mappers(&name, &nw, &cfg, k)?;
    let mut t = pfdbg_util::table::Table::new([
        "Benchmark",
        "#Gate",
        "Initial",
        "SM",
        "ABC",
        "Proposed(TLUT/TCON)",
    ]);
    t.row([
        cmp.name.clone(),
        cmp.gates.to_string(),
        cmp.initial_luts.to_string(),
        cmp.sm_luts.to_string(),
        cmp.abc_luts.to_string(),
        format!("{}({}/{})", cmp.proposed_luts, cmp.tluts, cmp.tcons),
    ]);
    print!("{}", t.render());
    println!(
        "\ndepths: golden {} | SM {} | ABC {} | proposed {}   reduction {:.2}x",
        cmp.depth_golden,
        cmp.depth_sm,
        cmp.depth_abc,
        cmp.depth_proposed,
        cmp.reduction_factor()
    );
    Ok(())
}

fn cmd_offline(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;
    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    let off = offline(&inst, &OfflineConfig { k, ..Default::default() })?;
    println!("offline generic stage for {name}:");
    println!(
        "  mapping: {} LUTs + {} TLUTs + {} TCONs, depth {}",
        off.map_stats.luts, off.map_stats.tluts, off.map_stats.tcons, off.map_stats.depth
    );
    if let (Some(t), Some(scg), Some(layout)) = (&off.tpar, &off.scg, &off.layout) {
        println!(
            "  place&route: {} CLBs, {} nets ({} tunable), {} wires, {} switches, {:?}",
            t.stats.n_clbs,
            t.stats.n_nets,
            t.stats.n_tunable_nets,
            t.stats.wires_used,
            t.stats.n_switches,
            t.stats.runtime
        );
        println!(
            "  bitstream: {} bits in {} frames; {} parameterized bits ({:.3}%)",
            layout.n_bits,
            layout.n_frames(),
            scg.generalized().n_tunable(),
            scg.generalized().tunable_fraction() * 100.0
        );
        if let Ok(timing) =
            pfdbg_pr::analyze_timing(&off.mapped, &off.kinds, t, &pfdbg_pr::DelayModel::default())
        {
            println!(
                "  timing: critical path {:.2} ns over {} LUT levels",
                timing.critical_delay, timing.levels
            );
        }
        let congestion =
            pfdbg_pr::analyze_congestion(&t.packed, &t.routed, &t.rrg, t.stats.channel_width);
        println!(
            "  congestion: peak channel {:.0}%, mean {:.0}%, tunable share {:.0}%",
            congestion.peak_utilization * 100.0,
            congestion.mean_utilization * 100.0,
            congestion.tunable_share * 100.0
        );
        if let Some(path) = flag(rest, "--dump-bitstream") {
            // The params=0 default specialization, as a loadable file.
            let params = pfdbg_util::BitVec::zeros(scg.generalized().n_params);
            let bs = scg.specialize(&params);
            let bytes = pfdbg_arch::bitfile::write(&bs, layout.frame_bits);
            std::fs::write(&path, &bytes).map_err(|e| format!("{path}: {e}"))?;
            println!("  wrote default specialization to {path} ({} bytes)", bytes.len());
        }
    }
    Ok(())
}

fn cmd_observe(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let signals_arg = flag(rest, "--signals").ok_or("--signals s1,s2,...|auto is required")?;
    let cycles = flag_usize(rest, "--cycles", 32)?;
    let k = flag_usize(rest, "--k", PAPER_K)?;

    let (_, _, inst) = prepare_instrumented(&nw, &icfg(rest)?, k)?;
    // `auto` observes the first signal of every trace port — a guaranteed
    // feasible selection, useful for smoke runs and for discovering what
    // the instrumented design can see.
    let wanted: Vec<String> = if signals_arg == "auto" {
        inst.ports.iter().filter_map(|p| p.signals.first().cloned()).collect()
    } else {
        signals_arg.split(',').map(str::to_string).collect()
    };
    let wanted: Vec<&str> = wanted.iter().map(String::as_str).collect();
    let off = offline(&inst, &OfflineConfig { k, ..Default::default() })?;
    let online = match (off.scg, off.layout) {
        (Some(scg), Some(layout)) => Some(OnlineReconfigurator::new(scg, layout, off.icap)),
        _ => None,
    };
    let dut = inst.network.clone();
    let mut session = DebugSession::new(inst, online);
    let wf = session.observe(&dut, &wanted, cycles, 0xD0, &[])?;
    println!("captured {} cycles of {name}:", wf.n_samples());
    print!("{}", wf.render_ascii());
    if let Some(turn) = session.turns().last() {
        if let Some(stats) = &turn.stats {
            println!(
                "turn cost: {} bits / {} frames changed; eval {:?} + transfer {:?}",
                stats.bits_changed, stats.frames_changed, stats.eval_time, stats.transfer_time
            );
        }
    }
    Ok(())
}

fn cmd_rank(rest: &[String]) -> Result<(), String> {
    let (name, nw) = load_design(rest)?;
    let top = flag_usize(rest, "--top", 20)?;
    println!("top {top} debug-critical signals of {name}:");
    for r in rank_signals(&nw).into_iter().take(top) {
        println!("  {:<24} score {:.3}", r.name, r.score);
    }
    Ok(())
}

fn cmd_localize(rest: &[String]) -> Result<(), String> {
    use pfdbg_emu::{apply_static, injectable_nets, lockstep, Fault};
    use pfdbg_netlist::truth::gates;

    let (name, nw) = load_design(rest)?;
    let cycles = flag_usize(rest, "--cycles", 256)?;
    let inst = instrument(&nw, &icfg(rest)?);
    let clean = inst.network.clone();

    // Pick (or accept) a victim net and break it.
    let victim = match flag(rest, "--bug") {
        Some(v) => v,
        None => {
            let nets = injectable_nets(&clean);
            if nets.is_empty() {
                return Err("design has no injectable nets".into());
            }
            clean.node(nets[nets.len() / 2]).name.clone()
        }
    };
    let victim_id = clean.find(&victim).ok_or_else(|| format!("no net {victim}"))?;
    let arity = clean.node(victim_id).fanins.len();
    let table = match arity {
        1 => gates::not1(),
        2 => gates::nand2(),
        n => return Err(format!("{victim} has arity {n}; pick a 1- or 2-input gate")),
    };
    let buggy = apply_static(&clean, &Fault::WrongGate { net: victim.clone(), table })?;
    println!("injected a WrongGate bug at {victim} in {name}");

    let report = lockstep(&clean, &buggy, cycles, 7)?;
    let Some((cycle, output)) = report.first_divergence else {
        println!("stimulus never excites the bug; try more --cycles");
        return Ok(());
    };
    println!("output {output} diverges first at cycle {cycle}; localizing...");

    let mut session = DebugSession::new(inst, None);
    let loc = pfdbg_core::localize(&mut session, &clean, &buggy, &output, cycles, 7)?;
    for (sig, bad) in &loc.observations {
        println!("  turn: observed {sig:<20} -> {}", if *bad { "MISMATCH" } else { "ok" });
    }
    println!(
        "suspect: {} ({} turns, 0 recompiles){}",
        loc.suspect,
        loc.turns_used,
        if loc.suspect == victim { "  [exact hit]" } else { "" }
    );
    Ok(())
}
