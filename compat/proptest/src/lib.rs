//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this stub covers
//! exactly what the workspace's property tests use: range and tuple
//! strategies, `any::<T>()`, `prop_map`, the `proptest!` macro with
//! `#![proptest_config(..)]`, and the `prop_assert!`/`prop_assert_eq!`
//! family. Cases are generated from a deterministic per-test RNG;
//! failures report the case number but are **not shrunk**.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the `proptest!` macro derives the seed from
    /// the test name so every test gets a distinct, stable stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Runner settings accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Shrink-iteration budget. Accepted for upstream-source
    /// compatibility; this offline subset does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Stable 64-bit FNV-1a over the test name: the per-test RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The test-defining macro. Matches the common proptest surface:
/// an optional `#![proptest_config(expr)]` followed by `#[test]`
/// functions whose arguments are drawn from strategies via `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (@run($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("proptest {} case {case}/{}: {e}", stringify!($name), config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 0usize..5).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// Ranges stay in bounds and tuples decompose.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in any::<u64>(), pair in arb_pair()) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
            let (a, b) = pair;
            prop_assert!((1..10).contains(&a), "a={a}");
            prop_assert_eq!(b.min(4), b);
        }

        /// Early `return Ok(())` short-circuits a case.
        #[test]
        fn early_return_ok(x in 0usize..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
