//! Aligned plain-text tables and horizontal bar charts.
//!
//! The benchmark harness regenerates the paper's tables (Table I, II) and
//! figures (Fig. 7) as terminal output plus CSV. Doing this locally keeps
//! the dependency set to the approved list.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the common benchmark layout).
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table { header, aligns, rows: Vec::new() }
    }

    /// Override a column's alignment.
    pub fn align(mut self, col: usize, align: Align) -> Self {
        self.aligns[col] = align;
        self
    }

    /// Append a row. Panics if the cell count does not match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with column separators and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<width$}", cells[i], width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header, &widths, &self.aligns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row, &widths, &self.aligns);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: cells containing commas or quotes are
    /// quoted, quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.header);
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

/// A labelled horizontal bar chart rendered with unicode blocks — used for
/// Fig.-7-style area plots in the terminal.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    entries: Vec<(String, f64)>,
}

impl BarChart {
    /// An empty chart.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one labelled bar. Negative values are clamped to zero.
    pub fn bar<S: Into<String>>(&mut self, label: S, value: f64) {
        self.entries.push((label.into(), value.max(0.0)));
    }

    /// Render with bars scaled so the maximum occupies `width` cells.
    pub fn render(&self, width: usize) -> String {
        let max = self.entries.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
        let label_w = self.entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, value) in &self.entries {
            let cells = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
            let _ = writeln!(out, "{label:<label_w$} |{} {value:.0}", "#".repeat(cells),);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_rules() {
        let mut t = Table::new(["name", "luts"]);
        t.row(["stereov", "208"]);
        t.row(["clma", "8381"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: the shorter number is padded on the left.
        assert!(lines[2].ends_with("208"));
        assert!(lines[3].ends_with("8381"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn barchart_scales_to_width() {
        let mut c = BarChart::new();
        c.bar("a", 10.0);
        c.bar("bb", 5.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(!lines[1].contains(&"#".repeat(6)));
    }

    #[test]
    fn barchart_handles_all_zero() {
        let mut c = BarChart::new();
        c.bar("z", 0.0);
        let s = c.render(10);
        assert!(s.contains("z |"));
        assert!(!s.contains('#'));
    }
}
