//! Fault injection: the bugs we hunt in the debugging experiments.
//!
//! The paper's use case is functional errors introduced at the RTL stage
//! and chased on an FPGA emulator. We model the classic fault classes:
//! a net stuck at a constant, a wrong gate function (the RTL bug), and a
//! transient state bit-flip at a given cycle (exercises triggers and
//! multi-turn debugging).

use pfdbg_netlist::truth::TruthTable;
use pfdbg_netlist::{Network, NodeId, NodeKind};

/// A fault to inject into a design.
#[derive(Debug, Clone)]
pub enum Fault {
    /// The named net is stuck at a constant value.
    StuckAt {
        /// Net name.
        net: String,
        /// The stuck value.
        value: bool,
    },
    /// The named table node computes a wrong function.
    WrongGate {
        /// Net name of the gate output.
        net: String,
        /// The (buggy) replacement truth table — same arity.
        table: TruthTable,
    },
    /// The named latch flips its state bit at the end of `cycle`.
    BitFlip {
        /// Latch net name.
        net: String,
        /// Cycle after which the state flips.
        cycle: usize,
    },
}

impl Fault {
    /// The net this fault affects.
    pub fn net(&self) -> &str {
        match self {
            Fault::StuckAt { net, .. }
            | Fault::WrongGate { net, .. }
            | Fault::BitFlip { net, .. } => net,
        }
    }

    /// Whether this fault mutates the netlist statically (vs. at run
    /// time).
    pub fn is_static(&self) -> bool {
        !matches!(self, Fault::BitFlip { .. })
    }
}

/// Apply a *static* fault, producing the faulty network. `BitFlip`s are
/// runtime faults handled by the emulator and are returned unchanged
/// (`Err` with an explanatory message for misuse).
pub fn apply_static(nw: &Network, fault: &Fault) -> Result<Network, String> {
    let mut out = nw.clone();
    match fault {
        Fault::StuckAt { net, value } => {
            let victim = out.find(net).ok_or_else(|| format!("no net {net}"))?;
            let name = out.fresh_name(&format!("$stuck_{net}"));
            let konst = out.add_const(name, *value);
            out.replace_uses(victim, konst);
            Ok(out)
        }
        Fault::WrongGate { net, table } => {
            let victim = out.find(net).ok_or_else(|| format!("no net {net}"))?;
            let node = out.node(victim);
            match &node.kind {
                NodeKind::Table(old) => {
                    if old.nvars() != table.nvars() {
                        return Err(format!(
                            "replacement arity {} != gate arity {}",
                            table.nvars(),
                            old.nvars()
                        ));
                    }
                    let fanins = node.fanins.clone();
                    let name = out.fresh_name(&format!("$buggy_{net}"));
                    let buggy = out.add_table(name, fanins, table.clone());
                    out.replace_uses(victim, buggy);
                    Ok(out)
                }
                _ => Err(format!("{net} is not a gate")),
            }
        }
        Fault::BitFlip { .. } => Err("BitFlip is a runtime fault; pass it to the emulator".into()),
    }
}

/// Candidate nets for random fault injection: internal table nodes (not
/// instrumentation artifacts whose names start with `$`).
pub fn injectable_nets(nw: &Network) -> Vec<NodeId> {
    nw.nodes()
        .filter(|(_, n)| n.is_table() && !n.name.starts_with('$') && !n.is_param)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdbg_netlist::sim::comb_equivalent;
    use pfdbg_netlist::truth::gates;

    fn sample() -> Network {
        let mut nw = Network::new("s");
        let a = nw.add_input("a");
        let b = nw.add_input("b");
        let g = nw.add_table("g", vec![a, b], gates::and2());
        let y = nw.add_table("y", vec![g, a], gates::xor2());
        nw.add_output("y", y);
        nw
    }

    #[test]
    fn stuck_at_changes_function() {
        let nw = sample();
        let faulty = apply_static(&nw, &Fault::StuckAt { net: "g".into(), value: true }).unwrap();
        faulty.validate().unwrap();
        assert!(!comb_equivalent(&nw, &faulty, 32, 5).unwrap());
    }

    #[test]
    fn wrong_gate_changes_function() {
        let nw = sample();
        let f = Fault::WrongGate { net: "g".into(), table: gates::or2() };
        let faulty = apply_static(&nw, &f).unwrap();
        faulty.validate().unwrap();
        assert!(!comb_equivalent(&nw, &faulty, 32, 5).unwrap());
    }

    #[test]
    fn wrong_gate_arity_checked() {
        let nw = sample();
        let f = Fault::WrongGate { net: "g".into(), table: gates::not1() };
        assert!(apply_static(&nw, &f).is_err());
    }

    #[test]
    fn unknown_net_rejected() {
        let nw = sample();
        assert!(apply_static(&nw, &Fault::StuckAt { net: "nope".into(), value: false }).is_err());
    }

    #[test]
    fn bitflip_is_runtime_only() {
        let nw = sample();
        assert!(apply_static(&nw, &Fault::BitFlip { net: "q".into(), cycle: 3 }).is_err());
        assert!(!Fault::BitFlip { net: "q".into(), cycle: 3 }.is_static());
    }

    #[test]
    fn injectable_nets_skip_artifacts() {
        let mut nw = sample();
        let a = nw.find("a").unwrap();
        nw.add_table("$mux0", vec![a], gates::buf1());
        let nets = injectable_nets(&nw);
        let names: Vec<&str> = nets.iter().map(|&id| nw.node(id).name.as_str()).collect();
        assert!(names.contains(&"g"));
        assert!(!names.contains(&"$mux0"));
    }
}
