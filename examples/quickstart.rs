//! Quickstart: the whole parameterized-debugging flow on a small design.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: build a design → run the offline generic stage (signal
//! parameterization, TCON mapping, place & route, generalized bitstream)
//! → open a debug session → observe two different signal sets with
//! microsecond specializations instead of recompiles.

use parameterized_fpga_debug::core::{
    offline, prepare_instrumented, DebugSession, InstrumentConfig, OfflineConfig, PAPER_K,
};
use parameterized_fpga_debug::netlist::truth::gates;
use parameterized_fpga_debug::netlist::Network;
use parameterized_fpga_debug::pconf::OnlineReconfigurator;

fn main() {
    // 1. A small design: a 4-bit ripple adder with a registered output.
    let design = build_adder(4);
    println!(
        "design: {} gates, {} inputs, {} outputs",
        design.n_tables(),
        design.n_inputs(),
        design.n_outputs()
    );

    // 2. Offline generic stage — run ONCE. All internal signals become
    //    observable through parameterized multiplexers.
    let icfg = InstrumentConfig { n_ports: 2, max_signals: None, coverage: 1 };
    let (initial, _, inst) =
        prepare_instrumented(&design, &icfg, PAPER_K).expect("instrumentation");
    println!(
        "instrumented: {} observable signals over {} trace ports, {} parameters",
        inst.observable().len(),
        inst.ports.len(),
        inst.n_params()
    );
    let off =
        offline(&inst, &OfflineConfig { k: PAPER_K, ..Default::default() }).expect("offline stage");
    println!(
        "mapping: {} LUTs + {} TLUTs + {} TCONs (initial design: {} LUTs — debugging is ~free)",
        off.map_stats.luts,
        off.map_stats.tluts,
        off.map_stats.tcons,
        initial.n_tables()
    );
    let scg = off.scg.expect("scg");
    println!(
        "generalized bitstream: {} bits, {} parameterized",
        scg.generalized().base.len(),
        scg.generalized().n_tunable()
    );

    // 3. Online stage — per debugging turn: pick signals, specialize,
    //    capture. No recompilation, ever.
    let online = OnlineReconfigurator::new(scg, off.layout.expect("layout"), off.icap);
    let dut = inst.network.clone();
    let observable: Vec<String> = inst.observable().iter().map(|s| s.to_string()).collect();
    let mut session = DebugSession::new(inst, Some(online));

    for (turn, sig) in observable.iter().take(3).enumerate() {
        let wf = session.observe(&dut, &[sig], 16, 42 + turn as u64, &[]).expect("debugging turn");
        let stats = session.turns().last().and_then(|t| t.stats).expect("stats");
        println!(
            "\nturn {turn}: observing {sig:12} | {} bits / {} frames changed | eval {:?} + transfer {:?}",
            stats.bits_changed, stats.frames_changed, stats.eval_time, stats.transfer_time
        );
        print!("{}", wf.render_ascii());
    }
    println!(
        "\ntotal reconfiguration time across all turns: {:?} (a single recompile would take minutes)",
        session.total_reconfig_time()
    );
}

fn build_adder(bits: usize) -> Network {
    let mut nw = Network::new("adder");
    let a: Vec<_> = (0..bits).map(|i| nw.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..bits).map(|i| nw.add_input(format!("b{i}"))).collect();
    let mut carry = None;
    for i in 0..bits {
        let axb = nw.add_table(format!("axb{i}"), vec![a[i], b[i]], gates::xor2());
        let (sum, cout) = match carry {
            None => {
                let cout = nw.add_table(format!("c{i}"), vec![a[i], b[i]], gates::and2());
                (axb, cout)
            }
            Some(c) => {
                let sum = nw.add_table(format!("s{i}"), vec![axb, c], gates::xor2());
                let g = nw.add_table(format!("g{i}"), vec![a[i], b[i]], gates::and2());
                let p = nw.add_table(format!("p{i}"), vec![axb, c], gates::and2());
                let cout = nw.add_table(format!("c{i}"), vec![g, p], gates::or2());
                (sum, cout)
            }
        };
        let q = nw.add_latch(format!("sum{i}"), sum, false);
        nw.add_output(format!("o{i}"), q);
        carry = Some(cout);
    }
    nw.add_output("cout", carry.expect("at least one bit"));
    nw
}
